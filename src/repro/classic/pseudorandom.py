"""Pseudorandom memory BIST (the paper's ref [1], Bardell et al.).

Before deterministic march BIST, the established BIST style generated
*pseudorandom* stimulus from an LFSR and compacted responses in a MISR,
comparing one final signature.  For random logic this works well; for
memories it leaves an escape probability (a fault is detected only if
the random access sequence happens to excite and then observe it), which
is exactly the weakness deterministic march generators fixed.  This
module provides the behavioural LFSR/MISR pair and a pseudorandom memory
test whose measured escape rate the X7 benchmark compares against March
C's determinism.

The pseudorandom test interleaves writes and reads driven by LFSR bits:
each step picks an address from the address LFSR and, per a control bit,
either writes an LFSR data word or reads and feeds the observation into
the MISR.  Expected values are obtained by shadowing the writes (the
signature-prediction pass a real implementation computes in software).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.classic.geometry import check_geometry
from repro.march.simulator import MemoryOperation

#: Maximal-length Galois LFSR tap masks, one per register width 1–24.
#: Every mask is verified maximal-period by test (direct full-period walk
#: for the small widths, linear-map order check for the large ones); the
#: degenerate width-1 register has period 1 by construction.
_TAPS: Dict[int, int] = {
    1: 0b1,
    2: 0b11,
    3: 0b110,
    4: 0b1100,
    5: 0b10100,
    6: 0b110000,
    7: 0b1100000,
    8: 0b10111000,
    9: 0b100010000,
    10: 0b1001000000,
    11: 0b10100000000,
    12: 0b111000001000,
    13: 0b1000000001101,
    14: 0b10000000010101,
    15: 0b110000000000000,
    16: 0b1011010000000000,
    17: 0b10010000000000000,
    18: 0b100000010000000000,
    19: 0b1000000000000100011,
    20: 0b10010000000000000000,
    21: 0b101000000000000000000,
    22: 0b1100000000000000000000,
    23: 0b10000100000000000000000,
    24: 0b111000010000000000000000,
}

#: Largest register width the tap table covers.
MAX_LFSR_WIDTH = max(_TAPS)


def lfsr_taps(width: int) -> int:
    """The verified maximal-length Galois tap mask for ``width``.

    Raises:
        ValueError: outside the 1–:data:`MAX_LFSR_WIDTH` table, with a
            pointer at how to extend it.
    """
    if width < 1:
        raise ValueError(f"LFSR width must be >= 1, got {width}")
    if width > MAX_LFSR_WIDTH:
        raise ValueError(
            f"no maximal-length taps for width {width}: the tap table "
            f"covers widths 1-{MAX_LFSR_WIDTH}; extend _TAPS in "
            "repro.classic.pseudorandom (with a verified maximal-period "
            "mask) to go wider"
        )
    return _TAPS[width]


class Lfsr:
    """Galois linear-feedback shift register.

    Args:
        width: register width in bits (a supported maximal-length size).
        seed: initial state; must be non-zero.
    """

    def __init__(self, width: int, seed: int = 1) -> None:
        taps = lfsr_taps(width)
        if not 0 < seed < (1 << width):
            raise ValueError(f"seed must be a non-zero {width}-bit value")
        self.width = width
        self.taps = taps
        self.state = seed

    def step(self) -> int:
        """Advance one bit; returns the new state."""
        lsb = self.state & 1
        self.state >>= 1
        if lsb:
            self.state ^= self.taps
        return self.state

    def value(self, bits: int) -> int:
        """Advance and return ``bits`` fresh pseudorandom bits."""
        out = 0
        for position in range(bits):
            out |= (self.step() & 1) << position
        return out

    @property
    def period(self) -> int:
        """Sequence period of a maximal-length register: ``2^w − 1``."""
        return (1 << self.width) - 1


class Misr:
    """Multiple-input signature register (behavioural).

    A Galois LFSR whose state is additionally XORed with each response
    word — the classical response compactor.  Aliasing probability is
    the textbook ``2^-w`` per the signature width.
    """

    def __init__(self, width: int = 16, seed: int = 1) -> None:
        self._lfsr = Lfsr(width, seed)
        self.width = width

    def absorb(self, value: int) -> None:
        self._lfsr.state ^= value & ((1 << self.width) - 1)
        self._lfsr.step()

    @property
    def signature(self) -> int:
        return self._lfsr.state


def pseudorandom_test(
    n_words: int,
    width: int = 1,
    length: int = 0,
    address_seed: int = 1,
    data_seed: int = 1,
) -> Iterator[MemoryOperation]:
    """A pseudorandom memory test of ``length`` operations (port 0).

    Writes and reads are interleaved under LFSR control; read
    expectations come from shadowing the write sequence, so the stream
    is directly comparable with deterministic tests in the coverage
    machinery.  Cells never written yet are skipped for reading (their
    contents are unknown), modelling the signature-prediction software's
    knowledge.

    Args:
        length: operation budget; defaults to ``10 × n_words`` (March
            C's budget, for a like-for-like comparison).
    """
    check_geometry(n_words, width)
    address_bits = max(1, (n_words - 1).bit_length())
    if address_bits + 2 > MAX_LFSR_WIDTH:
        raise ValueError(
            f"{n_words} words need a {address_bits + 2}-bit address "
            f"register, beyond the {MAX_LFSR_WIDTH}-bit tap table"
        )
    return _pseudorandom_ops(
        n_words, width, length or 10 * n_words, address_bits,
        address_seed, data_seed,
    )


def _pseudorandom_ops(
    n_words: int,
    width: int,
    length: int,
    address_bits: int,
    address_seed: int,
    data_seed: int,
) -> Iterator[MemoryOperation]:
    # The address register is wider than the address: an n-bit window of
    # a degree-n m-sequence never takes the all-zero value, so a
    # same-width register would never visit address 0 (a classic
    # pseudorandom-BIST pitfall); two extra stages make every window
    # value occur.  Non-power-of-two word counts fold the window into
    # range by modulo reduction, so every address stays below n_words.
    register_bits = min(w for w in _TAPS if w >= address_bits + 2)
    addr_lfsr = Lfsr(register_bits, address_seed)
    # Control and data bits come from a long-period register regardless
    # of word width: a short register's period would correlate the
    # write/read decision with the data value (a classic pseudorandom-
    # BIST implementation pitfall).
    data_lfsr = Lfsr(16, data_seed)
    shadow: Dict[int, int] = {}
    mask = (1 << width) - 1
    emitted = 0
    while emitted < length:
        address = addr_lfsr.value(address_bits) % n_words
        control = data_lfsr.value(1)
        if control or address not in shadow:
            value = data_lfsr.value(width) & mask
            shadow[address] = value
            yield MemoryOperation(0, address, True, value=value)
        else:
            yield MemoryOperation(0, address, False, expected=shadow[address])
        emitted += 1


def pseudorandom_signature(
    memory,
    n_words: int,
    width: int = 1,
    length: int = 0,
    misr_width: int = 16,
) -> Tuple[int, int]:
    """Run the pseudorandom test with MISR compaction.

    Returns:
        (predicted, observed) signatures; a mismatch is the BIST fail
        flag.  The prediction absorbs the expected read values, the
        observation the memory's actual responses.
    """
    predicted = Misr(misr_width)
    observed = Misr(misr_width)
    for op in pseudorandom_test(n_words, width, length):
        if op.is_write:
            memory.write(op.port, op.address, op.value)
        else:
            predicted.absorb(op.expected)
            observed.absorb(memory.read(op.port, op.address))
    return predicted.signature, observed.signature
