"""Checkerboard: the 4N gross-defect and retention-bake screen.

Writes the physical checkerboard pattern (each cell the complement of
its grid neighbours), reads it back, then repeats with the inverse
pattern.  Optionally idles between write and read (the retention bake).
Cheap and effective against shorts between physically adjacent cells and
gross processing defects, but blind to most coupling mechanisms — the
measured coverage gap to March C is part of the X7 benchmark.

Physical adjacency uses the same near-square folding as the NPSF models
(:class:`repro.faults.neighborhood.CellGrid`), so "checkerboard" is
checkerboard on silicon, not in address space.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.classic.geometry import check_geometry
from repro.faults.neighborhood import CellGrid
from repro.march.simulator import MemoryOperation


def _patterns(n_words: int, width: int, scrambler=None) -> List[int]:
    """Per-word checkerboard values from grid-position parity.

    With a :class:`repro.memory.scramble.AddressScrambler`, the parity is
    computed at the *physical* position each logical address actually
    selects — writing a checkerboard in logical order through a
    scrambled decoder otherwise produces physical stripes or blocks.
    """
    grid = CellGrid(n_words, width)
    words = []
    for word in range(n_words):
        physical_word = scrambler.physical(word) if scrambler else word
        value = 0
        for bit in range(width):
            row, col = grid.position((physical_word, bit))
            if (row + col) & 1:
                value |= 1 << bit
        words.append(value)
    return words


def checkerboard(
    n_words: int,
    width: int = 1,
    ports: int = 1,
    bake: Optional[int] = None,
    scrambler=None,
) -> Iterator[MemoryOperation]:
    """The two-phase checkerboard screen.

    Args:
        n_words / width / ports: memory geometry.
        bake: optional idle time inserted between each write sweep and
            its read-back (the retention bake); ``None`` skips it.
        scrambler: optional address scrambler; when given, the pattern
            is a checkerboard on *silicon*, not in address space.
    """
    check_geometry(n_words, width, ports)
    return _checkerboard(n_words, width, ports, bake, scrambler)


def _checkerboard(
    n_words: int,
    width: int,
    ports: int,
    bake: Optional[int],
    scrambler,
) -> Iterator[MemoryOperation]:
    mask = (1 << width) - 1
    pattern = _patterns(n_words, width, scrambler)
    for port in range(ports):
        for phase in (0, 1):
            for address in range(n_words):
                value = pattern[address] ^ (mask if phase else 0)
                yield MemoryOperation(port, address, True, value=value)
            if bake:
                yield MemoryOperation(port, 0, False, delay=bake)
            for address in range(n_words):
                value = pattern[address] ^ (mask if phase else 0)
                yield MemoryOperation(port, address, False, expected=value)


def checkerboard_op_count(n_words: int, ports: int = 1, bake: bool = False) -> int:
    """Operations of the full screen: ``4N`` (+2 bake delays) per port."""
    return ports * (4 * n_words + (2 if bake else 0))
