"""GALPAT (GALloping PATtern): the strongest classical O(N²) test.

Like Walking 1/0, GALPAT moves a mark cell through the array — but after
reading each *other* cell it immediately re-reads the **mark cell**
("ping-pong"), so any interaction between the pair is observed in both
directions and the faulty pair is located exactly.  That diagnostic
power is why GALPAT survived as a characterisation test long after march
algorithms took over production.

Complexity: per base cell, ``2(N-1)`` ping-pong reads plus the mark
write/read/restore → ``2N² + 2N`` operations per polarity pass (we run
both polarities: mark 1 on base 0, then mark 0 on base 1).
"""

from __future__ import annotations

from typing import Iterator

from repro.classic.geometry import check_geometry
from repro.march.backgrounds import apply_polarity
from repro.march.simulator import MemoryOperation


def _galpat_pass(
    n_words: int, width: int, port: int, mark_polarity: int
) -> Iterator[MemoryOperation]:
    base = apply_polarity(0, mark_polarity ^ 1, width)
    mark = apply_polarity(0, mark_polarity, width)
    for address in range(n_words):
        yield MemoryOperation(port, address, True, value=base)
    for base_cell in range(n_words):
        # Tenure pre-read: verifies the cell before it is disturbed,
        # closing the window where the previous tenure's restore write
        # corrupted exactly this cell (which the mark write would mask).
        yield MemoryOperation(port, base_cell, False, expected=base)
        yield MemoryOperation(port, base_cell, True, value=mark)
        for other in range(n_words):
            if other == base_cell:
                continue
            yield MemoryOperation(port, other, False, expected=base)
            yield MemoryOperation(port, base_cell, False, expected=mark)
        yield MemoryOperation(port, base_cell, True, value=base)
    # Final verify sweep: the last restore write of each tenure can
    # disturb a coupled victim after that victim's tenure reads are
    # over; the sweep closes that observation window.
    for address in range(n_words):
        yield MemoryOperation(port, address, False, expected=base)


def galpat(
    n_words: int, width: int = 1, ports: int = 1
) -> Iterator[MemoryOperation]:
    """Both GALPAT polarity passes, per port."""
    check_geometry(n_words, width, ports)
    return _galpat(n_words, width, ports)


def _galpat(
    n_words: int, width: int, ports: int
) -> Iterator[MemoryOperation]:
    for port in range(ports):
        yield from _galpat_pass(n_words, width, port, mark_polarity=1)
        yield from _galpat_pass(n_words, width, port, mark_polarity=0)


def galpat_op_count(n_words: int, ports: int = 1) -> int:
    """Operations of the full two-polarity GALPAT (init + tenures with
    pre-read + final verify sweep per pass): ``2(2N² + 3N)`` per port."""
    per_pass = n_words + n_words * (2 * (n_words - 1) + 3) + n_words
    return ports * 2 * per_pass
