"""Shared eager geometry validation for the classic generators.

Every classic generator promises the same address contract regardless of
word count (power-of-two or not): every emitted address lies in
``[0, n_words)`` and every address is visited.  The sweep generators
guarantee it structurally (``range(n_words)``), the pseudorandom test by
modulo reduction of the LFSR window.  What a lazy generator *cannot*
guarantee is early failure on nonsense geometry — a generator function
only raises at first ``next()``, long after the bad argument was passed.
The public wrappers therefore validate eagerly through this helper
before returning their iterator.
"""

from __future__ import annotations


def check_geometry(n_words: int, width: int = 1, ports: int = 1) -> None:
    """Raise ``ValueError`` on impossible geometry, eagerly.

    Any ``n_words >= 1`` is legal — non-power-of-two word counts are
    first-class, the generators never emit an address ``>= n_words``.
    """
    if n_words < 1:
        raise ValueError(f"n_words must be >= 1, got {n_words}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if ports < 1:
        raise ValueError(f"ports must be >= 1, got {ports}")
