"""Classical (pre-march) memory test algorithms.

The paper's introduction notes that "three classes of memory tests have
been proposed" for the functional fault models; march tests won because
they reach the same coverage in O(N).  This package implements the other
two classes as operation-stream generators compatible with the whole
coverage/BIST machinery, so the historical trade-off is measurable:

* :mod:`~repro.classic.walking` — Walking 1/0 (O(N²)): every cell
  carries the mark while every other cell is verified;
* :mod:`~repro.classic.galpat` — GALPAT (O(N²) with ping-pong reads):
  the strongest classical test, locating coupled cell pairs exactly;
* :mod:`~repro.classic.checkerboard` — the 4N checkerboard screen used
  for gross defects and retention bake;
* :mod:`~repro.classic.pseudorandom` — pseudorandom BIST (the paper's
  ref [1], Bardell/McAnney/Savir): LFSR-generated accesses compacted by
  a behavioural MISR, with the escape probability march tests eliminate.
"""

from repro.classic.walking import walking_ones, walking_zeros, walking_op_count
from repro.classic.galpat import galpat, galpat_op_count
from repro.classic.checkerboard import checkerboard, checkerboard_op_count
from repro.classic.geometry import check_geometry
from repro.classic.pseudorandom import (
    MAX_LFSR_WIDTH,
    Lfsr,
    Misr,
    lfsr_taps,
    pseudorandom_test,
    pseudorandom_signature,
)

__all__ = [
    "MAX_LFSR_WIDTH",
    "Lfsr",
    "Misr",
    "check_geometry",
    "checkerboard",
    "checkerboard_op_count",
    "galpat",
    "galpat_op_count",
    "lfsr_taps",
    "pseudorandom_signature",
    "pseudorandom_test",
    "walking_ones",
    "walking_op_count",
    "walking_zeros",
]
