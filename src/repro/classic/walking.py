"""Walking 1/0: the classical O(N²) exhaustive-observation test.

Procedure (Walking 1): initialise the array to the base value; for every
*base cell* in turn, write the mark there, read **all other cells**
(they must still hold the base value — any disturbance is caught
immediately), read the base cell itself, and restore it.  Walking 0 is
the polarity dual.

Complexity: ``N`` initialisation writes plus, per base cell,
``(N-1) + 2`` reads (a pre-read verifies the cell before it is
disturbed) and 2 writes, plus a final verify sweep → ``N² + 5N``
operations.  Detects all
SAFs, TFs, AFs and coupling faults, but at a hundred-to-thousand-fold
test-time premium over 10N March C — the premium that made march
algorithms the industry default and O(N²) tests characterisation-only.
"""

from __future__ import annotations

from typing import Iterator

from repro.classic.geometry import check_geometry
from repro.march.backgrounds import apply_polarity
from repro.march.simulator import MemoryOperation


def _walk(
    n_words: int, width: int, ports: int, mark_polarity: int
) -> Iterator[MemoryOperation]:
    mask = (1 << width) - 1
    base = apply_polarity(0, mark_polarity ^ 1, width) & mask
    mark = apply_polarity(0, mark_polarity, width) & mask
    for port in range(ports):
        for address in range(n_words):
            yield MemoryOperation(port, address, True, value=base)
        for base_cell in range(n_words):
            # Tenure pre-read (see galpat.py): closes the window where
            # the previous tenure's restore write corrupted this cell.
            yield MemoryOperation(port, base_cell, False, expected=base)
            yield MemoryOperation(port, base_cell, True, value=mark)
            for other in range(n_words):
                if other != base_cell:
                    yield MemoryOperation(port, other, False, expected=base)
            yield MemoryOperation(port, base_cell, False, expected=mark)
            yield MemoryOperation(port, base_cell, True, value=base)
        # Final verify sweep: closes the observation window on victims
        # disturbed by the last tenure's restore write.
        for address in range(n_words):
            yield MemoryOperation(port, address, False, expected=base)


def walking_ones(
    n_words: int, width: int = 1, ports: int = 1
) -> Iterator[MemoryOperation]:
    """Walking 1: base value 0, mark value all-ones."""
    check_geometry(n_words, width, ports)
    return _walk(n_words, width, ports, mark_polarity=1)


def walking_zeros(
    n_words: int, width: int = 1, ports: int = 1
) -> Iterator[MemoryOperation]:
    """Walking 0: base value all-ones, mark value 0."""
    check_geometry(n_words, width, ports)
    return _walk(n_words, width, ports, mark_polarity=0)


def walking_op_count(n_words: int, ports: int = 1) -> int:
    """Operations of one walking pass: ``N² + 5N`` per port."""
    return ports * (n_words * n_words + 5 * n_words)
