"""Cycle-accurate executor and area model of hardwired controllers.

The executor walks the synthesised :class:`~repro.core.hardwired.synthesis.StateGraph`
one state per cycle, driving the shared datapath through the same
``step_signals`` function the truth-table enumeration uses.  The area
model is the state register plus the Quine–McCluskey-minimised
next-state/output logic plus the shared datapath — nothing else, which
is why the hardwired designs are the smallest entries of Table 1 for a
given algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.area.components import Counter, HardwareSpec, LogicBlock, Register
from repro.core.controller import (
    BistController,
    ControllerCapabilities,
    Flexibility,
)
from repro.core.datapath import (
    AddressGenerator,
    DataGenerator,
    PortSequencer,
    shared_datapath_hardware,
)
from repro.core.hardwired.synthesis import FsmState, StateGraph, step_signals, synthesize
from repro.march.element import AddressOrder, OpKind
from repro.march.simulator import MemoryOperation
from repro.march.test import MarchTest


@dataclass(frozen=True)
class HardwiredTraceEntry:
    """One executed state, for inspection and the architecture benches."""

    cycle: int
    state: FsmState
    port: int
    address: int
    background: int
    operation: Optional[MemoryOperation]


class HardwiredBistController(BistController):
    """A non-programmable FSM controller for one fixed march algorithm.

    Args:
        test: the algorithm baked into the hardware.
        capabilities: memory geometry (decides whether background/port
            loop states exist).
        max_cycles: safety bound; ``None`` derives one from geometry.
    """

    architecture = "Hardwired"
    flexibility = Flexibility.LOW

    def __init__(
        self,
        test: MarchTest,
        capabilities: ControllerCapabilities,
        max_cycles: Optional[int] = None,
    ) -> None:
        super().__init__(capabilities)
        self.graph = synthesize(test, capabilities)
        self.max_cycles = max_cycles

    def loaded_test(self) -> MarchTest:
        return self.graph.source

    # -- execution ------------------------------------------------------------

    def _cycle_bound(self) -> int:
        caps = self.capabilities
        backgrounds = len(DataGenerator(caps.width).backgrounds)
        per_pass = self.graph.state_count * max(1, caps.n_words)
        return 1000 + 20 * per_pass * backgrounds * caps.ports

    def trace(self) -> Iterator[HardwiredTraceEntry]:
        caps = self.capabilities
        addr = AddressGenerator(caps.n_words)
        data = DataGenerator(caps.width)
        ports = PortSequencer(caps.ports)
        code = 0
        restart_pending = True
        bound = self.max_cycles or self._cycle_bound()

        for cycle in range(bound):
            state = self.graph.states[code]
            signals = step_signals(
                state,
                last_address=addr.last_address,
                last_data=data.last_background,
                last_port=ports.last_port,
            )
            operation: Optional[MemoryOperation] = None
            if state.kind == "op":
                if restart_pending:
                    direction = (
                        AddressOrder.DOWN if state.down else AddressOrder.UP
                    )
                    addr.start(direction)
                    restart_pending = False
                    # Re-sample the flag after the sweep reload.
                    signals = step_signals(
                        state,
                        last_address=addr.last_address,
                        last_data=data.last_background,
                        last_port=ports.last_port,
                    )
                polarity = int(bool(signals["polarity"]))
                if state.op_kind is OpKind.WRITE:
                    operation = MemoryOperation(
                        ports.port, addr.address, True, value=data.word(polarity)
                    )
                else:
                    operation = MemoryOperation(
                        ports.port,
                        addr.address,
                        False,
                        expected=data.word(polarity),
                    )
            elif state.kind == "pause":
                operation = MemoryOperation(
                    ports.port, 0, False, delay=state.pause_duration
                )

            yield HardwiredTraceEntry(
                cycle=cycle,
                state=state,
                port=ports.port,
                address=addr.address,
                background=data.background,
                operation=operation,
            )

            if signals["addr_inc"]:
                addr.increment()
            if signals["addr_start"]:
                restart_pending = True
            if signals["data_step"]:
                data.increment()
            if signals["data_reset"]:
                data.reset()
            if signals["port_step"]:
                ports.increment()
            if signals["test_end"]:
                return
            next_code = int(signals["next_state"])
            if state.kind == "done":
                return
            code = next_code
        raise RuntimeError(
            f"hardwired controller {self.graph.name!r} did not terminate "
            f"within {bound} cycles"
        )

    def operations(self) -> Iterator[MemoryOperation]:
        for entry in self.trace():
            if entry.operation is not None:
                yield entry.operation

    # -- area model -------------------------------------------------------------

    def hardware(self) -> HardwareSpec:
        caps = self.capabilities
        spec = HardwareSpec(
            name=f"{self.graph.source.name} (hardwired)",
            notes=f"{self.graph.state_count} states, "
                  f"{self.graph.state_bits}-bit state register",
        )
        spec.add(Register("controller/state register", self.graph.state_bits))
        spec.add(
            LogicBlock(
                "controller/next-state and output logic",
                self.graph.truth_table().gate_equivalents(),
            )
        )
        if self.graph.source.has_pauses:
            spec.add(Counter("controller/pause timer", 16))
        spec.extend(shared_datapath_hardware(caps.n_words, caps.width, caps.ports))
        return spec
