"""March algorithm → hardwired FSM synthesis.

A hardwired controller dedicates one FSM state to every operation of the
fixed algorithm (plus idle, pause and loop states), with transitions
conditioned on the datapath status flags.  This module builds that state
graph and enumerates its full next-state/output truth table, which the
area model minimises with Quine–McCluskey — so the Table 1/2 growth of
hardwired controller area with algorithm complexity is *derived*, not
asserted.

State graph layout for an algorithm with items I0..Ik:

* state 0 — IDLE (waits for Start; transitions into the first op state);
* one OP state per operation of each element: applies the operation at
  the current address; the element's last OP state either steps the
  address and loops back to the element's first OP state, or — on *Last
  Address* — falls through to the next item's first state;
* one PAUSE state per retention pause (waits on the pause timer);
* a BG_LOOP state when the controller supports word-oriented memories
  (re-runs the algorithm per data background);
* a PORT_LOOP state when it supports multiport memories;
* a DONE state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.area.logic_min import TruthTable
from repro.core.controller import ControllerCapabilities
from repro.march.element import AddressOrder, MarchElement, OpKind, Pause
from repro.march.test import MarchTest


@dataclass(frozen=True)
class FsmState:
    """One synthesised state of a hardwired controller.

    Attributes:
        index: binary state code.
        kind: 'idle', 'op', 'pause', 'bg_loop', 'port_loop' or 'done'.
        op_kind / polarity: memory operation of an 'op' state.
        down: traversal direction of the owning element.
        element_first: state code of the owning element's first op state
            (the address-sweep loop target).
        is_element_last: this op is the element's final operation.
        starts_element: first op of an element (reloads the sweep start).
        pause_duration: idle time of a 'pause' state.
        next_index: fall-through successor state code.
    """

    index: int
    kind: str
    op_kind: Optional[OpKind] = None
    polarity: int = 0
    down: bool = False
    element_first: int = 0
    is_element_last: bool = False
    starts_element: bool = False
    pause_duration: int = 0
    next_index: int = 0


@dataclass
class StateGraph:
    """The complete synthesised FSM of one hardwired controller."""

    name: str
    states: List[FsmState]
    capabilities: ControllerCapabilities
    source: MarchTest

    @property
    def state_count(self) -> int:
        return len(self.states)

    @property
    def state_bits(self) -> int:
        return max(1, math.ceil(math.log2(self.state_count)))

    def truth_table(self) -> TruthTable:
        """Full next-state/output truth table for logic synthesis.

        Inputs, LSB first: state code, then last_address, last_data,
        last_port.  Unused state codes are don't-cares.
        """
        bits = self.state_bits
        n_vars = bits + 3
        output_names = [f"ns{i}" for i in range(bits)] + [
            "read",
            "write",
            "polarity",
            "addr_down",
            "addr_start",
            "addr_inc",
            "data_step",
            "data_reset",
            "port_step",
            "pause",
            "test_end",
        ]
        outputs: Dict[str, set] = {name: set() for name in output_names}
        dont_cares = set()
        for minterm in range(1 << n_vars):
            code = minterm & ((1 << bits) - 1)
            last_address = bool((minterm >> bits) & 1)
            last_data = bool((minterm >> (bits + 1)) & 1)
            last_port = bool((minterm >> (bits + 2)) & 1)
            if code >= self.state_count:
                dont_cares.add(minterm)
                continue
            signals = step_signals(
                self.states[code], last_address, last_data, last_port
            )
            ns = signals["next_state"]
            for bit in range(bits):
                if (ns >> bit) & 1:
                    outputs[f"ns{bit}"].add(minterm)
            for name in output_names:
                if name.startswith("ns"):
                    continue
                if signals[name]:
                    outputs[name].add(minterm)
        return TruthTable(n_vars, outputs, dont_cares)


def step_signals(
    state: FsmState,
    last_address: bool,
    last_data: bool,
    last_port: bool,
) -> Dict[str, object]:
    """Combinational next-state/output function of a hardwired FSM.

    Shared by the cycle simulator and the truth-table enumeration, so
    the synthesised logic is exactly what the simulation executes.
    """
    signals: Dict[str, object] = {
        "read": False,
        "write": False,
        "polarity": False,
        "addr_down": state.down,
        "addr_start": False,
        "addr_inc": False,
        "data_step": False,
        "data_reset": False,
        "port_step": False,
        "pause": False,
        "test_end": False,
        "next_state": state.next_index,
    }
    if state.kind == "idle":
        signals["addr_start"] = True
        return signals
    if state.kind == "op":
        signals["read"] = state.op_kind is OpKind.READ
        signals["write"] = state.op_kind is OpKind.WRITE
        signals["polarity"] = bool(state.polarity)
        if state.is_element_last:
            if last_address:
                # Mealy restart strobe: the *next* element reloads its
                # sweep start (direction comes from its own addr_down).
                signals["addr_start"] = True
                signals["next_state"] = state.next_index
            else:
                signals["addr_inc"] = True
                signals["next_state"] = state.element_first
        return signals
    if state.kind == "pause":
        signals["pause"] = True
        return signals
    if state.kind == "bg_loop":
        if last_data:
            signals["data_reset"] = True
            signals["next_state"] = state.next_index
        else:
            signals["data_step"] = True
            signals["addr_start"] = True
            signals["next_state"] = 1  # restart at the first op state
        return signals
    if state.kind == "port_loop":
        if last_port:
            signals["test_end"] = True
            signals["next_state"] = state.next_index
        else:
            signals["port_step"] = True
            signals["data_reset"] = True
            signals["addr_start"] = True
            signals["next_state"] = 1
        return signals
    # done
    signals["test_end"] = True
    signals["next_state"] = state.index
    return signals


def synthesize(
    test: MarchTest, capabilities: ControllerCapabilities
) -> StateGraph:
    """Build the hardwired state graph of ``test``.

    The graph embeds the algorithm completely — operations, polarities,
    traversal orders, pause durations — which is why any algorithm
    change is a hardware re-design.
    """
    states: List[FsmState] = []

    def add(**kwargs) -> int:
        index = len(states)
        states.append(FsmState(index=index, next_index=index + 1, **kwargs))
        return index

    add(kind="idle")
    for item in test.items:
        if isinstance(item, Pause):
            add(kind="pause", pause_duration=item.duration)
            continue
        first = len(states)
        down = item.order.resolve() is AddressOrder.DOWN
        for position, op in enumerate(item.ops):
            add(
                kind="op",
                op_kind=op.kind,
                polarity=op.polarity,
                down=down,
                element_first=first,
                is_element_last=position == len(item.ops) - 1,
                starts_element=position == 0,
            )
    if capabilities.word_oriented:
        add(kind="bg_loop")
    if capabilities.multiport:
        add(kind="port_loop")
    done = add(kind="done")
    # DONE self-loops.
    states[done] = FsmState(index=done, kind="done", next_index=done)
    return StateGraph(
        name=f"Hardwired {test.name}",
        states=states,
        capabilities=capabilities,
        source=test,
    )
