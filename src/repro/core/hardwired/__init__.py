"""Non-programmable (hardwired) FSM memory BIST controllers.

The paper's baselines: each fixed march algorithm is synthesised
directly into a dedicated finite state machine
(:mod:`~repro.core.hardwired.synthesis` builds the state graph,
:mod:`~repro.core.hardwired.controller` executes it and derives its
silicon area by genuinely minimising the next-state/output logic).

These controllers have optimum logic overhead for their one algorithm
and LOW flexibility: any change to the algorithm means a re-design —
which is exactly the trade-off the paper's Tables 1–2 quantify as the
algorithms grow from March C to March A++.
"""

from repro.core.hardwired.synthesis import StateGraph, synthesize
from repro.core.hardwired.controller import HardwiredBistController

__all__ = ["HardwiredBistController", "StateGraph", "synthesize"]
