"""Canonical memory-operation types for BIST controllers.

The canonical :class:`MemoryOperation` lives in
:mod:`repro.march.simulator` because it *is* the semantics of a march
test; this module re-exports it so controller code (and downstream
users) can import it from the core package without caring where the
golden engine lives.
"""

from repro.march.simulator import Failure, MemoryOperation, RunResult, run_on_memory

__all__ = ["Failure", "MemoryOperation", "RunResult", "run_on_memory"]
