"""Transparent BIST transform for on-line testing.

The paper's conclusion argues that the optimised microcode controller's
flexibility "expands its application from diagnostics to on-line
testing" (citing Nicolaidis' transparent BIST).  A *transparent* test
preserves the memory's contents: instead of writing fixed data, every
operation works relative to the data already stored, so the test can run
during idle periods of a live system.

Nicolaidis' transformation of a march test:

1. drop initialising write elements (those writing before any read —
   the initial contents play the role of the background data);
2. reinterpret polarities relative to each cell's initial content ``s``:
   ``r0/w1`` become ``r s / w s̄`` etc.;
3. append a final element restoring the original contents (the
   transformed test must perform an even number of inversions per cell —
   if the net inversion count is odd, append one more inverting write);
4. because expected read values now depend on unknown initial data, the
   response is checked by *signature prediction*: a first pass reads out
   and predicts the signature, a second pass compares (we model the
   prediction pass explicitly).

:func:`transparent_version` implements 1–3 on the march-test algebra;
:class:`TransparentBistRun` implements the two-pass signature scheme on
top of any controller-compatible memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.march.element import MarchElement, OpKind, Operation, Pause
from repro.march.simulator import MemoryOperation
from repro.march.test import MarchItem, MarchTest
from repro.memory.sram import Sram


def transparent_version(test: MarchTest) -> MarchTest:
    """Content-preserving (transparent) variant of a march test.

    Polarity semantics of the result: polarity 0 = the cell's *initial*
    content ``s``, polarity 1 = its complement.  The transform drops
    leading write-only elements and balances the per-cell inversion
    count so the memory ends up unchanged.
    """
    items: List[MarchItem] = []
    seen_read = False
    inversions = 0
    for item in test.items:
        if isinstance(item, Pause):
            if seen_read:
                items.append(item)
            continue
        if not seen_read and all(op.is_write for op in item.ops):
            # Initialising element: the live contents replace it.
            continue
        seen_read = True
        items.append(item)
        inversions += sum(
            1 for op in item.ops if op.is_write and _inverts(op, item)
        )
    if not items:
        raise ValueError(f"{test.name} has no read operations to make transparent")
    # Count net inversion parity per cell: polarity-1 writes flip relative
    # to the previous polarity-0 state; in the relative encoding, a write
    # of polarity p leaves the cell at p, so the final state equals the
    # last write's polarity (or the initial state when no write exists).
    last_write_polarity = _final_write_polarity(items)
    if last_write_polarity == 1:
        items.append(MarchElement(items[-1].order if isinstance(items[-1], MarchElement) else test.elements[-1].order,
                                  [Operation(OpKind.WRITE, 0)]))
    return MarchTest(f"Transparent {test.name}", items)


def _inverts(op: Operation, element: MarchElement) -> bool:
    return op.polarity == 1


def _final_write_polarity(items: List[MarchItem]) -> int:
    polarity = 0
    for item in items:
        if isinstance(item, Pause):
            continue
        for op in item.ops:
            if op.is_write:
                polarity = op.polarity
    return polarity


@dataclass
class TransparentBistRun:
    """Two-pass transparent BIST execution on a live memory.

    Pass 1 (*signature prediction*): read every cell to capture the
    initial contents and compute the expected read sequence.  Pass 2
    (*test*): run the transparent algorithm with expectations rebased on
    the captured contents, compacting reads into a simple XOR/rotate
    signature, and compare against the prediction.

    Attributes:
        test: the transparent march test (from
            :func:`transparent_version`).
        memory: the live memory (contents are preserved on a fault-free
            part).
    """

    test: MarchTest
    memory: Sram

    def _operation_stream(
        self, initial: Tuple[int, ...]
    ) -> List[MemoryOperation]:
        """Expand the transparent test against captured initial contents."""
        mask = self.memory.word_mask
        stream: List[MemoryOperation] = []
        for port in range(self.memory.ports):
            for item in self.test.items:
                if isinstance(item, Pause):
                    stream.append(
                        MemoryOperation(port, 0, False, delay=item.duration)
                    )
                    continue
                addresses = (
                    range(self.memory.n_words)
                    if not item.order.resolve().value == "down"
                    else range(self.memory.n_words - 1, -1, -1)
                )
                for address in addresses:
                    base = initial[address]
                    for op in item.ops:
                        word = base ^ (mask if op.polarity else 0)
                        if op.is_write:
                            stream.append(
                                MemoryOperation(port, address, True, value=word)
                            )
                        else:
                            stream.append(
                                MemoryOperation(
                                    port, address, False, expected=word
                                )
                            )
        return stream

    @staticmethod
    def _signature(values: List[int], width: int) -> int:
        """XOR/rotate compaction (a behavioural MISR stand-in)."""
        signature = 0
        mask = (1 << max(width, 8)) - 1
        for value in values:
            signature = (((signature << 1) | (signature >> (max(width, 8) - 1))) & mask) ^ value
        return signature

    def run(self) -> "TransparentResult":
        """Execute both passes; see :class:`TransparentResult`."""
        initial = self.memory.snapshot()
        stream = self._operation_stream(tuple(initial))
        predicted = self._signature(
            [op.expected for op in stream if op.is_read], self.memory.width
        )
        observed_reads: List[int] = []
        failures = 0
        for op in stream:
            if op.is_delay:
                self.memory.elapse(op.delay)
            elif op.is_write:
                self.memory.write(op.port, op.address, op.value)
            else:
                value = self.memory.read(op.port, op.address)
                observed_reads.append(value)
                if value != op.expected:
                    failures += 1
        observed = self._signature(observed_reads, self.memory.width)
        final = self.memory.snapshot()
        return TransparentResult(
            passed=observed == predicted,
            predicted_signature=predicted,
            observed_signature=observed,
            mismatch_count=failures,
            contents_preserved=tuple(final) == tuple(initial),
        )


@dataclass(frozen=True)
class TransparentResult:
    """Outcome of a transparent BIST run.

    ``contents_preserved`` is only meaningful on a fault-free memory —
    a faulty part may (correctly) end up corrupted.
    """

    passed: bool
    predicted_signature: int
    observed_signature: int
    mismatch_count: int
    contents_preserved: bool
