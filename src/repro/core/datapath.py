"""Shared BIST datapath blocks.

Besides the controller, a memory BIST unit contains datapath components
that every architecture in the paper shares: an address generator, a
test-data (background) generator, a response comparator and — for
multiport memories — a port sequencer.  The controllers drive these
through small signal interfaces; the area model costs them identically
across architectures, so Table 1/2 differences come purely from the
controllers, as in the paper.
"""

from __future__ import annotations

import math
from typing import List

from repro.area.components import Comparator, Component, Counter, Register, XorArray
from repro.march.backgrounds import apply_polarity, data_backgrounds
from repro.march.element import AddressOrder


class AddressGenerator:
    """Up/down binary address counter with a *last address* flag.

    The generator walks 0..n−1 (up) or n−1..0 (down); ``last_address``
    asserts at the final address of the current direction, which is the
    condition input of every controller's element-looping logic.
    """

    def __init__(self, n_words: int) -> None:
        if n_words <= 0:
            raise ValueError(f"address space needs at least one word, got {n_words}")
        self.n_words = n_words
        self.direction = AddressOrder.UP
        self.address = 0

    @property
    def address_bits(self) -> int:
        return max(1, math.ceil(math.log2(self.n_words)))

    @property
    def last_address(self) -> bool:
        if self.direction is AddressOrder.UP:
            return self.address == self.n_words - 1
        return self.address == 0

    def start(self, direction: AddressOrder) -> None:
        """Load the sweep start position for ``direction``."""
        self.direction = direction.resolve()
        self.address = 0 if self.direction is AddressOrder.UP else self.n_words - 1

    def increment(self) -> None:
        """Advance one position; wraps to the start at the sweep end."""
        if self.last_address:
            self.start(self.direction)
        elif self.direction is AddressOrder.UP:
            self.address += 1
        else:
            self.address -= 1

    def hardware(self) -> List[Component]:
        return [
            Counter("datapath/address counter", self.address_bits, up_down=True,
                    loadable=True),
            # last-address detect: compare against 0 / n-1.
            Comparator("datapath/last-address detect", self.address_bits),
        ]


class DataGenerator:
    """Test-data background generator.

    Holds the current background pattern index and produces the word for
    a march polarity (background for polarity 0, complement for 1).  The
    ``last_background`` flag is the *Last Data* condition of both
    programmable controllers; :meth:`increment` is their *Inc. Data*
    action.
    """

    def __init__(self, width: int) -> None:
        self.width = width
        self.backgrounds = data_backgrounds(width)
        self.index = 0

    @property
    def background(self) -> int:
        return self.backgrounds[self.index]

    @property
    def last_background(self) -> bool:
        return self.index == len(self.backgrounds) - 1

    def word(self, polarity: int) -> int:
        """Data word for a march operation of the given polarity."""
        return apply_polarity(self.background, polarity, self.width)

    def increment(self) -> None:
        if self.last_background:
            self.index = 0
        else:
            self.index += 1

    def reset(self) -> None:
        self.index = 0

    def hardware(self) -> List[Component]:
        count = len(self.backgrounds)
        index_bits = max(1, math.ceil(math.log2(count))) if count > 1 else 0
        components: List[Component] = [
            Register("datapath/background register", self.width),
            XorArray("datapath/polarity invert", self.width),
        ]
        if index_bits:
            components.append(
                Counter("datapath/background counter", index_bits)
            )
        return components


class PortSequencer:
    """Port selection counter with a *last port* flag."""

    def __init__(self, ports: int) -> None:
        if ports <= 0:
            raise ValueError(f"need at least one port, got {ports}")
        self.ports = ports
        self.port = 0

    @property
    def last_port(self) -> bool:
        return self.port == self.ports - 1

    def increment(self) -> None:
        if self.last_port:
            self.port = 0
        else:
            self.port += 1

    def reset(self) -> None:
        self.port = 0

    def hardware(self) -> List[Component]:
        if self.ports == 1:
            return []
        bits = max(1, math.ceil(math.log2(self.ports)))
        return [Counter("datapath/port counter", bits)]


def response_comparator_hardware(width: int) -> List[Component]:
    """The response analyser: expected-data XOR stage + equality check."""
    return [Comparator("datapath/response comparator", width)]


def shared_datapath_hardware(
    n_words: int, width: int, ports: int
) -> List[Component]:
    """Complete shared-datapath inventory for a memory geometry."""
    components: List[Component] = []
    components.extend(AddressGenerator(n_words).hardware())
    components.extend(DataGenerator(width).hardware())
    components.extend(PortSequencer(ports).hardware())
    components.extend(response_comparator_hardware(width))
    return components
