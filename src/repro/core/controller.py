"""Common BIST controller interface.

Every architecture — microcode-based, programmable FSM-based, hardwired —
implements :class:`BistController`:

* ``operations()`` yields the cycle-ordered stream of memory operations
  the controller issues, in the canonical
  :class:`repro.march.simulator.MemoryOperation` form (the golden
  expander produces the same type, which is what makes stream-equality
  checking trivial);
* ``hardware()`` returns the structural inventory the area model costs;
* ``capabilities`` declares what the *hardware* supports, independent of
  the currently loaded program — the basis of the paper's flexibility
  grading (Table 1, column 2).
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Iterator

from repro.area.components import HardwareSpec
from repro.march.simulator import MemoryOperation
from repro.march.test import MarchTest


class Flexibility(enum.Enum):
    """The paper's three-level flexibility grading.

    * ``HIGH`` — any march-style algorithm expressible in the microcode
      ISA, including per-element operation patterns of arbitrary length
      and retention pauses (microcode-based architecture).
    * ``MEDIUM`` — any algorithm composed of the SM0–SM7 march elements
      (programmable FSM-based architecture); algorithms with other
      element patterns (March B, the '++' triple-read variants) are not
      realisable.
    * ``LOW`` — exactly one hardwired algorithm.
    """

    HIGH = "HIGH"
    MEDIUM = "MEDIUM"
    LOW = "LOW"


@dataclass(frozen=True)
class ControllerCapabilities:
    """What a controller instance's hardware supports.

    Attributes:
        n_words: address-space size the address generator is built for.
        width: memory word width the data generator/comparator handle.
        ports: number of ports the port sequencer can select.
        word_oriented: True when the data-background loop hardware is
            present (Table 2's "word-oriented" configuration).
        multiport: True when the port loop hardware is present.
    """

    n_words: int
    width: int = 1
    ports: int = 1

    @property
    def word_oriented(self) -> bool:
        return self.width > 1

    @property
    def multiport(self) -> bool:
        return self.ports > 1


class BistController(abc.ABC):
    """Abstract memory BIST controller."""

    #: architecture family name used in reports ("Microcode-Based", ...).
    architecture: str = "?"
    #: the paper's flexibility grade for the family.
    flexibility: Flexibility = Flexibility.LOW

    def __init__(self, capabilities: ControllerCapabilities) -> None:
        self.capabilities = capabilities

    @abc.abstractmethod
    def operations(self) -> Iterator[MemoryOperation]:
        """Cycle-ordered memory operations of one full test run."""

    @abc.abstractmethod
    def hardware(self) -> HardwareSpec:
        """Structural inventory for the area model."""

    @abc.abstractmethod
    def loaded_test(self) -> MarchTest:
        """The march algorithm this controller currently realises."""

    def __repr__(self) -> str:
        caps = self.capabilities
        return (
            f"<{type(self).__name__} [{self.architecture}] "
            f"{caps.n_words}x{caps.width} bits, {caps.ports} port(s), "
            f"test={self.loaded_test().name!r}>"
        )
