"""Field-programming file format for BIST programs.

The paper's programmable controllers are loaded "through an
initialization sequence" from the tester; this module defines the
interchange format that flow would use — a line-oriented hex text with
provenance comments, one encoded instruction word per line:

```
# repro-bist-program v1
# kind: microcode            (or: progfsm)
# name: March C
# rows: 9
0c1    ; 0: w0  addr=up+inc  LOOP
020    ; 1: r0  addr=up  NOP
...
```

Comments (``#`` header lines, ``;`` trailers) are ignored on load, so a
tester can regenerate or hand-edit programs.  Loading a microcode
program recovers its source algorithm through the decompiler, which
makes load/dump a semantic round-trip: the reloaded program drives a
controller to the exact same operation stream.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.core.microcode.assembler import MicrocodeProgram
from repro.core.microcode.decompiler import decompile
from repro.core.microcode.disassembler import disassemble_instruction
from repro.core.microcode.instruction import MicroInstruction
from repro.core.progfsm.compiler import FsmProgram
from repro.core.progfsm.instruction import FsmInstruction
from repro.march.library import RETENTION_PAUSE

FORMAT_TAG = "repro-bist-program v1"


class ProgramFormatError(ValueError):
    """Raised for malformed program files."""


def dump_program(program: Union[MicrocodeProgram, FsmProgram]) -> str:
    """Serialise a microcode or FSM program to the interchange text."""
    if isinstance(program, MicrocodeProgram):
        kind = "microcode"
        lines = [
            f"{instr.encode():03x}    ; {index}: {disassemble_instruction(instr)}"
            for index, instr in enumerate(program.instructions)
        ]
    elif isinstance(program, FsmProgram):
        kind = "progfsm"
        lines = [
            f"{instr.encode():02x}    ; {index}: {instr}"
            for index, instr in enumerate(program.instructions)
        ]
    else:
        raise TypeError(f"cannot serialise {type(program).__name__}")
    header = [
        f"# {FORMAT_TAG}",
        f"# kind: {kind}",
        f"# name: {program.name}",
        f"# rows: {len(program.instructions)}",
    ]
    return "\n".join(header + lines) + "\n"


def _parse(text: str) -> Tuple[str, str, List[int]]:
    kind = ""
    name = "loaded"
    words: List[int] = []
    seen_tag = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body == FORMAT_TAG:
                seen_tag = True
            elif body.startswith("kind:"):
                kind = body.split(":", 1)[1].strip()
            elif body.startswith("name:"):
                name = body.split(":", 1)[1].strip()
            continue
        payload = line.split(";", 1)[0].strip()
        if not payload:
            continue
        try:
            words.append(int(payload, 16))
        except ValueError:
            raise ProgramFormatError(
                f"line {lineno}: {payload!r} is not a hex instruction word"
            ) from None
    if not seen_tag:
        raise ProgramFormatError(f"missing format tag '# {FORMAT_TAG}'")
    if kind not in ("microcode", "progfsm"):
        raise ProgramFormatError(f"missing or unknown '# kind:' header ({kind!r})")
    if not words:
        raise ProgramFormatError("program has no instruction words")
    return kind, name, words


def load_program(text: str) -> Union[MicrocodeProgram, FsmProgram]:
    """Parse the interchange text back into a program object.

    Microcode programs get their source algorithm reconstructed via the
    decompiler; FSM programs likewise via the SM element definitions.

    Raises:
        ProgramFormatError: for syntactic problems.
        ValueError: for words that decode to invalid instructions.
    """
    kind, name, words = _parse(text)
    if kind == "microcode":
        instructions = [MicroInstruction.decode(word) for word in words]
        source = decompile(instructions, name=name)
        return MicrocodeProgram(
            name=name, instructions=instructions, source=source
        )
    instructions_fsm = [FsmInstruction.decode(word) for word in words]
    source = _decompile_fsm(instructions_fsm, name)
    return FsmProgram(
        name=name, instructions=instructions_fsm, source=source,
        pause_duration=RETENTION_PAUSE,
    )


def _decompile_fsm(instructions: List[FsmInstruction], name: str):
    """Reconstruct the march test of an FSM program."""
    from repro.core.progfsm.march_elements import sm_element
    from repro.march.element import AddressOrder, Pause as MarchPause
    from repro.march.test import MarchTest

    items = []
    for instr in instructions:
        if not instr.is_element:
            continue  # loop rows carry no algorithm content
        if instr.hold:
            items.append(MarchPause(RETENTION_PAUSE))
        order = AddressOrder.DOWN if instr.addr_down else AddressOrder.UP
        items.append(
            sm_element(instr.mode, order, instr.base_data, int(instr.compare))
        )
    if not items:
        raise ProgramFormatError("FSM program has no element rows")
    return MarchTest(name, items)
