"""The complete memory BIST unit: controller + datapath + memory.

:class:`MemoryBistUnit` wires any :class:`~repro.core.controller.BistController`
to a memory under test and runs the self-test, producing a go/no-go
verdict plus the fail log that the diagnostics package analyses — the
two usage modes the paper argues a programmable controller should serve
across fabrication stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.area.estimator import AreaReport, estimate
from repro.area.technology import Technology
from repro.core.controller import BistController
from repro.march.simulator import Failure, run_on_memory
from repro.memory.sram import Sram


@dataclass
class BistResult:
    """Outcome of one BIST run.

    Attributes:
        passed: go/no-go verdict (the BIST *Test End* + fail flag).
        operations: memory operations the controller issued.
        failures: read mismatches, in occurrence order (empty in go/no-go
            mode after the first failure when ``stop_at_first_failure``).
        controller: architecture name that produced the run.
        test_name: algorithm executed.
    """

    passed: bool
    operations: int
    failures: List[Failure] = field(default_factory=list)
    controller: str = ""
    test_name: str = ""

    @property
    def failure_count(self) -> int:
        return len(self.failures)

    def __str__(self) -> str:
        verdict = "PASS" if self.passed else f"FAIL ({self.failure_count} mismatches)"
        return (
            f"[{self.controller}] {self.test_name}: {verdict} after "
            f"{self.operations} operations"
        )


class MemoryBistUnit:
    """A BIST controller bound to its memory under test.

    Args:
        controller: any of the three architectures.
        memory: the memory under test; its geometry must match the
            controller's capabilities.

    Raises:
        ValueError: on geometry mismatch — a BIST unit is built *for* a
            specific embedded memory.
    """

    def __init__(self, controller: BistController, memory: Sram) -> None:
        caps = controller.capabilities
        if (memory.n_words, memory.width, memory.ports) != (
            caps.n_words,
            caps.width,
            caps.ports,
        ):
            raise ValueError(
                f"memory geometry {memory.n_words}x{memory.width}/"
                f"{memory.ports}p does not match controller capabilities "
                f"{caps.n_words}x{caps.width}/{caps.ports}p"
            )
        self.controller = controller
        self.memory = memory

    def run(self, stop_at_first_failure: bool = False) -> BistResult:
        """Execute the loaded algorithm against the memory.

        Args:
            stop_at_first_failure: go/no-go production mode; leave False
                to capture the complete fail log for diagnostics.
        """
        result = run_on_memory(
            self.controller.operations(),
            self.memory,
            stop_at_first_failure=stop_at_first_failure,
        )
        return BistResult(
            passed=result.passed,
            operations=result.operations,
            failures=result.failures,
            controller=self.controller.architecture,
            test_name=self.controller.loaded_test().name,
        )

    def area(self, tech: Optional[Technology] = None) -> AreaReport:
        """Silicon area of the whole BIST unit (controller + datapath)."""
        return estimate(self.controller.hardware(), tech)
