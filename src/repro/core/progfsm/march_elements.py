"""The SM0–SM7 march-element library (paper Eq. 2).

Each SM is an operation pattern written relative to the element's base
test data ``D``: the entry ``(kind, rel)`` applies ``kind`` with data
polarity ``rel`` XOR the instruction's base polarity.  Reconstructed set
(the OCR of Eq. 2 loses the complement bars; this reconstruction is the
unique one that realises the March C/C+/A/A+ programs the paper's
Section 2.2 walks through)::

    SM0 = (wD)                 SM4 = (rD rD rD)
    SM1 = (rD wD̄)              SM5 = (rD)
    SM2 = (rD wD̄ rD̄ wD)        SM6 = (rD wD̄ wD wD̄)
    SM3 = (rD wD̄ wD)           SM7 = (rD wD̄ rD̄)

With the base data/compare/order complements applied by the lower FSM,
these compose into March C (SM0·SM1·SM1·SM1·SM1·SM5), March A
(SM0·SM6·SM3·SM6·SM3), the MATS family, March X/Y and the '+' retention
variants (SM7/SM5 suffix) — but *not* March B (6-operation element) or
the '++' triple-read-write mixes, which is the architecture's MEDIUM
flexibility boundary.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.march.element import AddressOrder, MarchElement, OpKind, Operation

#: (kind, relative polarity) per operation, indexed by SM number.
SM_PATTERNS: Tuple[Tuple[Tuple[OpKind, int], ...], ...] = (
    ((OpKind.WRITE, 0),),                                                  # SM0
    ((OpKind.READ, 0), (OpKind.WRITE, 1)),                                 # SM1
    ((OpKind.READ, 0), (OpKind.WRITE, 1), (OpKind.READ, 1), (OpKind.WRITE, 0)),  # SM2
    ((OpKind.READ, 0), (OpKind.WRITE, 1), (OpKind.WRITE, 0)),              # SM3
    ((OpKind.READ, 0), (OpKind.READ, 0), (OpKind.READ, 0)),                # SM4
    ((OpKind.READ, 0),),                                                   # SM5
    ((OpKind.READ, 0), (OpKind.WRITE, 1), (OpKind.WRITE, 0), (OpKind.WRITE, 1)),  # SM6
    ((OpKind.READ, 0), (OpKind.WRITE, 1), (OpKind.READ, 1)),               # SM7
)

#: Longest SM pattern — sizes the lower FSM's read/write state chain.
MAX_SM_OPS = max(len(pattern) for pattern in SM_PATTERNS)


def sm_element(
    sm: int, order: AddressOrder, data: int, compare: int
) -> MarchElement:
    """Concrete march element realised by SM ``sm`` with base values.

    Args:
        sm: SM index 0..7.
        order: traversal order.
        data: base write polarity D (relative polarities XOR with it).
        compare: base read-compare polarity C.
    """
    pattern = SM_PATTERNS[sm]
    ops = []
    for kind, rel in pattern:
        base = data if kind is OpKind.WRITE else compare
        ops.append(Operation(kind, rel ^ base))
    return MarchElement(order, ops)


def match_element(
    element: MarchElement,
) -> Optional[Tuple[int, int, int]]:
    """Find the (SM index, base data, base compare) realising ``element``.

    Returns ``None`` when no SM pattern matches — the architecture's
    flexibility boundary.  Base values not constrained by the pattern
    (no write / no read present) default to 0.
    """
    kinds = tuple(op.kind for op in element.ops)
    for sm, pattern in enumerate(SM_PATTERNS):
        if kinds != tuple(kind for kind, _ in pattern):
            continue
        data: Optional[int] = None
        compare: Optional[int] = None
        consistent = True
        for op, (kind, rel) in zip(element.ops, pattern):
            base = op.polarity ^ rel
            if kind is OpKind.WRITE:
                if data is None:
                    data = base
                elif data != base:
                    consistent = False
                    break
            else:
                if compare is None:
                    compare = base
                elif compare != base:
                    consistent = False
                    break
        if consistent:
            return sm, data if data is not None else 0, (
                compare if compare is not None else 0
            )
    return None


def realizable(element: MarchElement) -> bool:
    """Whether the SM library can realise this element."""
    return match_element(element) is not None
