"""Programmable FSM-based memory BIST architecture (paper Fig. 3/4/5).

Two-level structure:

* an **upper controller** — a 2-dimensional circular buffer of 8-bit
  instructions (:mod:`~repro.core.progfsm.upper_buffer`), each
  parameterising one march element plus two loop paths: *path A* repeats
  the whole algorithm for the next data background and *path B*
  increments the port;
* a **lower controller** — a parametric 7-state FSM
  (:mod:`~repro.core.progfsm.lower_fsm`) that realises the eight
  canonical march elements SM0–SM7
  (:mod:`~repro.core.progfsm.march_elements`).

The architecture is graded MEDIUM flexibility: any algorithm composed of
SM0–SM7 elements is loadable (March C/C+/A/A+, MATS family, March X/Y),
but algorithms needing other per-element operation patterns (March B,
the '++' triple-read variants) are not — the boundary
:mod:`repro.eval.flexibility` measures.
"""

from repro.core.progfsm.march_elements import (
    SM_PATTERNS,
    match_element,
    sm_element,
)
from repro.core.progfsm.instruction import DataControl, FsmInstruction
from repro.core.progfsm.compiler import CompileError, FsmProgram, compile_to_sm
from repro.core.progfsm.upper_buffer import CircularBuffer
from repro.core.progfsm.lower_fsm import LowerFsm, LowerFsmState
from repro.core.progfsm.controller import ProgrammableFsmBistController

__all__ = [
    "CircularBuffer",
    "CompileError",
    "DataControl",
    "FsmInstruction",
    "FsmProgram",
    "LowerFsm",
    "LowerFsmState",
    "ProgrammableFsmBistController",
    "SM_PATTERNS",
    "compile_to_sm",
    "match_element",
    "sm_element",
]
