"""The upper controller: a 2-dimensional circular instruction buffer.

The buffer holds one row per march element plus the loop rows; a row
pointer advances on the lower FSM's *Next Instruction* signal.  The two
execution paths of Fig. 4(b):

* **path A** — reaching the ``LOOP_BG`` row with *Last Data* de-asserted
  increments the data-background generator and wraps the pointer to row
  0, re-running the algorithm for the next background;
* **path B** — reaching the ``LOOP_PORT`` row with *Last Port*
  de-asserted activates the next port (and resets the background
  generator) before wrapping; with *Last Port* asserted the test ends.

Unlike the microcode storage unit, the buffer rows shift/select at
functional clock rate, so they must be full scan flip-flops — the
paper's reason the scan-only-cell optimisation of Table 3 does not apply
to this architecture.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.area.components import Component, Counter, Decoder, Mux, Register
from repro.core.progfsm.instruction import FsmInstruction, INSTRUCTION_BITS

#: Default buffer depth: March C+ (8 element rows) + both loop rows,
#: with headroom for MATS/X/Y-class custom programs.
DEFAULT_ROWS = 12


class CircularBuffer:
    """Upper-controller instruction store with a wrap-around pointer.

    Args:
        rows: buffer depth.
        default_program: rows loaded by :meth:`initialize_default` (the
            *Initialize* input's default algorithm).
    """

    def __init__(
        self,
        rows: int = DEFAULT_ROWS,
        default_program: Optional[Sequence[FsmInstruction]] = None,
    ) -> None:
        if rows <= 0:
            raise ValueError(f"buffer needs at least one row, got {rows}")
        self.rows = rows
        self.default_program: List[FsmInstruction] = list(default_program or [])
        if len(self.default_program) > rows:
            raise ValueError(
                f"default program ({len(self.default_program)} rows) exceeds "
                f"buffer depth {rows}"
            )
        self._words: List[int] = [0] * rows
        self._used = len(self.default_program)
        self.pointer = 0
        self.initialize_default()

    @property
    def width(self) -> int:
        return INSTRUCTION_BITS

    @property
    def used_rows(self) -> int:
        """Rows occupied by the loaded program."""
        return self._used

    def load(self, program: Sequence[FsmInstruction]) -> None:
        if len(program) > self.rows:
            raise ValueError(
                f"program ({len(program)} rows) exceeds buffer depth {self.rows}"
            )
        self._words = [instr.encode() for instr in program]
        self._words.extend([0] * (self.rows - len(program)))
        self._used = len(program)
        self.pointer = 0

    def initialize_default(self) -> None:
        self.load(self.default_program)

    def current(self) -> FsmInstruction:
        return FsmInstruction.decode(self._words[self.pointer])

    def advance(self) -> None:
        """Next Instruction: step the pointer within the used region."""
        self.pointer += 1
        if self.pointer >= self._used:
            self.pointer = 0

    def wrap(self) -> None:
        """Loop back to row 0 (paths A and B)."""
        self.pointer = 0

    def reset(self) -> None:
        self.pointer = 0

    def hardware(self) -> List[Component]:
        pointer_bits = max(1, math.ceil(math.log2(self.rows)))
        return [
            # Functional-rate storage: full scan flip-flops, no
            # scan-only discount (see module docstring).
            Register("controller/circular buffer", self.width, rows=self.rows,
                     cell="scan_dff"),
            # The buffer rotates (shifts one row per march component), so
            # every bit needs a rotate-path feedback mux instead of a row
            # decoder/selector: the current instruction is always row 0.
            Mux("controller/buffer rotate path", 2, self.width * self.rows),
            Counter("controller/buffer pointer", pointer_bits, loadable=True),
        ]
