"""The parametric 7-state lower FSM (paper Fig. 4a).

States: ``IDLE → RESET → RW0..RW3 → DONE``.  The four RW states perform
the (up to four) operations of the selected SM pattern on the current
address; after the pattern's last operation the FSM either steps the
address and loops back to RW0, or — on *Last Address* — enters DONE.
An asserted *Hold* input keeps the FSM in DONE (the retention pause);
otherwise it returns to IDLE, ready for the next upper-buffer
instruction.

The transition/output function :func:`lower_fsm_step` is the single
source of truth: the cycle simulator executes it, and
:func:`lower_fsm_truth_table` enumerates it into the truth table the
area model synthesises (inputs: state[2:0], mode[2:0], last_address,
start, hold — 9 variables).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.area.logic_min import TruthTable
from repro.core.progfsm.march_elements import SM_PATTERNS
from repro.march.element import OpKind


class LowerFsmState(enum.IntEnum):
    """The seven states of Fig. 4(a)."""

    IDLE = 0
    RESET = 1
    RW0 = 2
    RW1 = 3
    RW2 = 4
    RW3 = 5
    DONE = 6


@dataclass(frozen=True)
class LowerFsmOutputs:
    """Moore/Mealy outputs of one lower-FSM cycle.

    Attributes:
        next_state: state entered at the next clock.
        read / write: memory strobes for this cycle.
        rel_polarity: SM-relative data polarity of the operation (XORed
            with the instruction's base D/C downstream).
        addr_start: (re)load the address-sweep start position.
        addr_inc: advance the address generator.
        done: element finished (the upper controller's Next Instruction
            condition).
    """

    next_state: LowerFsmState
    read: bool = False
    write: bool = False
    rel_polarity: int = 0
    addr_start: bool = False
    addr_inc: bool = False
    done: bool = False


def lower_fsm_step(
    state: LowerFsmState,
    mode: int,
    last_address: bool,
    start: bool,
    hold: bool,
) -> LowerFsmOutputs:
    """Combinational transition/output function of the lower FSM.

    Args:
        state: current state.
        mode: SM index from the upper-buffer instruction.
        last_address: address generator status flag.
        start: upper controller requests an element run (IDLE exit).
        hold: hold-in-DONE input (retention pause in progress).
    """
    pattern = SM_PATTERNS[mode]
    if state is LowerFsmState.IDLE:
        next_state = LowerFsmState.RESET if start else LowerFsmState.IDLE
        return LowerFsmOutputs(next_state=next_state)
    if state is LowerFsmState.RESET:
        return LowerFsmOutputs(next_state=LowerFsmState.RW0, addr_start=True)
    if state is LowerFsmState.DONE:
        next_state = LowerFsmState.DONE if hold else LowerFsmState.IDLE
        return LowerFsmOutputs(next_state=next_state, done=True)

    # RW0..RW3: operation k of the pattern.
    op_index = int(state) - int(LowerFsmState.RW0)
    if op_index >= len(pattern):
        # Unreachable for well-formed sequencing; recover to DONE.
        return LowerFsmOutputs(next_state=LowerFsmState.DONE)
    kind, rel = pattern[op_index]
    is_last_op = op_index == len(pattern) - 1
    if not is_last_op:
        next_state = LowerFsmState(int(state) + 1)
        addr_inc = False
    elif last_address:
        next_state = LowerFsmState.DONE
        addr_inc = False
    else:
        next_state = LowerFsmState.RW0
        addr_inc = True
    return LowerFsmOutputs(
        next_state=next_state,
        read=kind is OpKind.READ,
        write=kind is OpKind.WRITE,
        rel_polarity=rel,
        addr_inc=addr_inc,
    )


class LowerFsm:
    """Sequential wrapper holding the 3-bit state register."""

    def __init__(self) -> None:
        self.state = LowerFsmState.IDLE

    def step(
        self, mode: int, last_address: bool, start: bool, hold: bool
    ) -> LowerFsmOutputs:
        outputs = lower_fsm_step(self.state, mode, last_address, start, hold)
        self.state = outputs.next_state
        return outputs

    def reset(self) -> None:
        self.state = LowerFsmState.IDLE


def lower_fsm_truth_table() -> TruthTable:
    """Enumerated truth table for synthesis.

    Inputs, LSB first: state[0..2], mode[0..2], last_address, start,
    hold — 9 variables, 512 minterms.  State codes 7 (unused) are
    don't-cares.
    """
    output_names = (
        "ns0",
        "ns1",
        "ns2",
        "read",
        "write",
        "rel_polarity",
        "addr_start",
        "addr_inc",
        "done",
    )
    outputs: Dict[str, set] = {name: set() for name in output_names}
    dont_cares = set()
    for minterm in range(512):
        state_code = minterm & 0b111
        mode = (minterm >> 3) & 0b111
        last_address = bool((minterm >> 6) & 1)
        start = bool((minterm >> 7) & 1)
        hold = bool((minterm >> 8) & 1)
        if state_code > int(LowerFsmState.DONE):
            dont_cares.add(minterm)
            continue
        out = lower_fsm_step(
            LowerFsmState(state_code), mode, last_address, start, hold
        )
        ns = int(out.next_state)
        for bit in range(3):
            if (ns >> bit) & 1:
                outputs[f"ns{bit}"].add(minterm)
        for name, value in (
            ("read", out.read),
            ("write", out.write),
            ("rel_polarity", bool(out.rel_polarity)),
            ("addr_start", out.addr_start),
            ("addr_inc", out.addr_inc),
            ("done", out.done),
        ):
            if value:
                outputs[name].add(minterm)
    return TruthTable(9, outputs, dont_cares)
