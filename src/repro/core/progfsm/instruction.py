"""Upper-buffer instruction format of the programmable FSM architecture.

The paper divides the 8-bit instruction into five fields: a 1-bit hold
condition, a 1-bit reference address order, a 2-bit data-generation
control, a 1-bit compare polarity and a 3-bit mode.  Concrete layout
(LSB first)::

    [0]   HOLD       pause in the lower FSM's Done state before this
                     element (retention testing)
    [1]   ADDR_DOWN  reference address order (up/down)
    [3:2] DATA_CTRL  data-generation control (:class:`DataControl`)
    [4]   COMPARE    base compare polarity C
    [7:5] MODE       SM index 0..7 (don't-care for loop rows)

``DATA_CTRL`` doubles as the row-type selector, which is how the two
loop rows of the paper's Fig. 5 (background loop-back / port increment,
mode column shown as "xxx") fit the same word:

* ``BASE0`` / ``BASE1`` — a march-element row with base data polarity
  D = 0 / 1;
* ``LOOP_BG`` — path-A row: increment the data background and loop the
  whole algorithm back, until *Last Data*;
* ``LOOP_PORT`` — path-B row: activate the next port and loop back,
  until *Last Port* (then Test End).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Width of one upper-buffer instruction word.
INSTRUCTION_BITS = 8

BIT_HOLD = 0
BIT_ADDR_DOWN = 1
DATA_CTRL_SHIFT = 2
DATA_CTRL_MASK = 0b11
BIT_COMPARE = 4
MODE_SHIFT = 5
MODE_MASK = 0b111


class DataControl(enum.IntEnum):
    """The 2-bit data-generation-control field."""

    BASE0 = 0      # element row, base data polarity 0
    BASE1 = 1      # element row, base data polarity 1
    LOOP_BG = 2    # background loop-back row (path A)
    LOOP_PORT = 3  # port-increment row (path B)


@dataclass(frozen=True)
class FsmInstruction:
    """One decoded upper-buffer word.

    Attributes:
        hold: pause before executing this element (retention testing).
        addr_down: traversal order of this element.
        data_ctrl: row type / base data polarity.
        compare: base compare polarity.
        mode: SM index (element rows; ignored on loop rows).
    """

    hold: bool = False
    addr_down: bool = False
    data_ctrl: DataControl = DataControl.BASE0
    compare: bool = False
    mode: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.mode <= MODE_MASK:
            raise ValueError(f"mode {self.mode} out of range 0..{MODE_MASK}")

    @property
    def is_element(self) -> bool:
        return self.data_ctrl in (DataControl.BASE0, DataControl.BASE1)

    @property
    def base_data(self) -> int:
        """Base write polarity D of an element row."""
        return 1 if self.data_ctrl is DataControl.BASE1 else 0

    def encode(self) -> int:
        word = int(self.hold) << BIT_HOLD
        word |= int(self.addr_down) << BIT_ADDR_DOWN
        word |= int(self.data_ctrl) << DATA_CTRL_SHIFT
        word |= int(self.compare) << BIT_COMPARE
        word |= self.mode << MODE_SHIFT
        return word

    @classmethod
    def decode(cls, word: int) -> "FsmInstruction":
        if not 0 <= word < (1 << INSTRUCTION_BITS):
            raise ValueError(f"word {word:#x} exceeds {INSTRUCTION_BITS} bits")
        return cls(
            hold=bool((word >> BIT_HOLD) & 1),
            addr_down=bool((word >> BIT_ADDR_DOWN) & 1),
            data_ctrl=DataControl((word >> DATA_CTRL_SHIFT) & DATA_CTRL_MASK),
            compare=bool((word >> BIT_COMPARE) & 1),
            mode=(word >> MODE_SHIFT) & MODE_MASK,
        )

    def __str__(self) -> str:
        if self.data_ctrl is DataControl.LOOP_BG:
            return "loop-bg (path A)"
        if self.data_ctrl is DataControl.LOOP_PORT:
            return "loop-port (path B)"
        order = "down" if self.addr_down else "up"
        hold = " hold" if self.hold else ""
        return (
            f"SM{self.mode} {order} D={self.base_data} "
            f"C={int(self.compare)}{hold}"
        )
