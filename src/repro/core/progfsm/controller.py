"""Cycle-accurate model of the programmable FSM-based BIST controller.

Composes the circular buffer (upper controller), the 7-state lower FSM
and the shared datapath.  The execution trace records lower-FSM state
transitions, which the Fig. 4 benchmark renders to show the state walk
and the path-A/path-B loops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from repro.area.components import (
    Counter,
    HardwareSpec,
    LogicBlock,
    Register,
    XorArray,
)
from repro.core.controller import (
    BistController,
    ControllerCapabilities,
    Flexibility,
)
from repro.core.datapath import (
    AddressGenerator,
    DataGenerator,
    PortSequencer,
    shared_datapath_hardware,
)
from repro.core.progfsm.compiler import FsmProgram, compile_to_sm
from repro.core.progfsm.instruction import DataControl, FsmInstruction
from repro.core.progfsm.lower_fsm import (
    LowerFsm,
    LowerFsmState,
    lower_fsm_step,
    lower_fsm_truth_table,
)
from repro.core.progfsm.upper_buffer import DEFAULT_ROWS, CircularBuffer
from repro.march.element import AddressOrder
from repro.march.simulator import MemoryOperation
from repro.march.test import MarchTest


@dataclass(frozen=True)
class FsmTraceEntry:
    """One lower-FSM cycle, for the Fig. 4 architecture benchmark."""

    cycle: int
    row: int
    instruction: FsmInstruction
    state: LowerFsmState
    port: int
    address: int
    background: int
    operation: Optional[MemoryOperation]
    path: str = ""  # "A" / "B" on loop-back cycles


class ProgrammableFsmBistController(BistController):
    """The paper's proposed programmable FSM-based memory BIST unit.

    Args:
        test: a march algorithm (compiled on construction) or a
            pre-compiled :class:`FsmProgram`.
        capabilities: memory geometry the hardware targets.
        buffer_rows: circular-buffer depth.
        max_cycles: safety bound; ``None`` derives one from geometry.
        verify: statically verify programs before load (the in-field
            safety gate, mirroring the microcode controller).

    Raises:
        CompileError: when the algorithm is outside the SM0–SM7 library.
        VerificationError: when a pre-compiled program fails the static
            PF checks against this controller's geometry and buffer.
    """

    architecture = "Prog. FSM-Based"
    flexibility = Flexibility.MEDIUM

    def __init__(
        self,
        test: Union[MarchTest, FsmProgram],
        capabilities: ControllerCapabilities,
        buffer_rows: int = DEFAULT_ROWS,
        max_cycles: Optional[int] = None,
        verify: bool = True,
    ) -> None:
        super().__init__(capabilities)
        self.verify = verify
        if isinstance(test, MarchTest):
            self.program = compile_to_sm(test, capabilities, verify=verify)
        else:
            if verify:
                self._verify_program(test, buffer_rows)
            self.program = test
        self.buffer = CircularBuffer(
            rows=buffer_rows, default_program=self.program.instructions
        )
        self.max_cycles = max_cycles

    def loaded_test(self) -> MarchTest:
        return self.program.source

    def _verify_program(
        self, program: FsmProgram, buffer_rows: int
    ) -> None:
        """Static pre-load verification (the in-field safety gate).

        Knows this controller's actual buffer depth, so the advisory
        PF003 default-depth warning becomes a hard error here.
        """
        from repro.analysis.verifier import verify_fsm_program

        verify_fsm_program(
            program, self.capabilities, buffer_rows=buffer_rows
        ).raise_on_errors()

    def load(self, test: Union[MarchTest, FsmProgram]) -> None:
        """Load a different SM-composed algorithm; no hardware change.

        Verifies the program against this controller's capabilities and
        buffer depth first (unless built with ``verify=False``)."""
        if isinstance(test, MarchTest):
            self.program = compile_to_sm(
                test, self.capabilities, verify=self.verify
            )
        else:
            if self.verify:
                self._verify_program(test, self.buffer.rows)
            self.program = test
        self.buffer.load(self.program.instructions)

    # -- execution ---------------------------------------------------------

    def _cycle_bound(self) -> int:
        caps = self.capabilities
        backgrounds = len(DataGenerator(caps.width).backgrounds)
        per_pass = max(1, len(self.program)) * max(1, caps.n_words) * 6
        return 1000 + 20 * per_pass * backgrounds * caps.ports

    def trace(self) -> Iterator[FsmTraceEntry]:
        """Cycle-by-cycle trace of upper-buffer rows and lower-FSM states."""
        caps = self.capabilities
        addr = AddressGenerator(caps.n_words)
        data = DataGenerator(caps.width)
        ports = PortSequencer(caps.ports)
        fsm = LowerFsm()
        buffer = self.buffer
        buffer.reset()
        if not self.program.instructions:
            return
        bound = self.max_cycles or self._cycle_bound()
        hold_pending = False  # pause still owed before the current row

        cycle = 0
        while cycle < bound:
            row = buffer.pointer
            instr = buffer.current()

            if not instr.is_element:
                # Loop rows are handled by the upper controller directly.
                if instr.data_ctrl is DataControl.LOOP_BG:
                    if data.last_background:
                        data.reset()
                        buffer.advance()
                        path = ""
                        if buffer.pointer == 0:
                            # LOOP_BG was the last row (single-port unit):
                            # wrapping past it ends the test.
                            return
                    else:
                        data.increment()
                        buffer.wrap()
                        path = "A"
                    yield FsmTraceEntry(
                        cycle, row, instr, fsm.state, ports.port,
                        addr.address, data.background, None, path=path,
                    )
                    cycle += 1
                    continue
                # LOOP_PORT row.
                if ports.last_port:
                    yield FsmTraceEntry(
                        cycle, row, instr, fsm.state, ports.port,
                        addr.address, data.background, None, path="",
                    )
                    return
                ports.increment()
                data.reset()
                buffer.wrap()
                yield FsmTraceEntry(
                    cycle, row, instr, fsm.state, ports.port,
                    addr.address, data.background, None, path="B",
                )
                cycle += 1
                continue

            # Element row: optional hold pause, then drive the lower FSM
            # through one full element.
            operation: Optional[MemoryOperation] = None
            if instr.hold and not hold_pending and fsm.state is LowerFsmState.IDLE:
                hold_pending = True
                operation = MemoryOperation(
                    ports.port, 0, False, delay=self.program.pause_duration
                )
                yield FsmTraceEntry(
                    cycle, row, instr, fsm.state, ports.port,
                    addr.address, data.background, operation,
                )
                cycle += 1
                continue

            direction = (
                AddressOrder.DOWN if instr.addr_down else AddressOrder.UP
            )
            executing_state = fsm.state
            outputs = fsm.step(
                mode=instr.mode,
                last_address=addr.last_address,
                start=True,
                hold=False,
            )
            operation = None
            if outputs.addr_start:
                addr.start(direction)
            if outputs.read:
                polarity = outputs.rel_polarity ^ int(instr.compare)
                operation = MemoryOperation(
                    ports.port, addr.address, False,
                    expected=data.word(polarity),
                )
            elif outputs.write:
                polarity = outputs.rel_polarity ^ instr.base_data
                operation = MemoryOperation(
                    ports.port, addr.address, True, value=data.word(polarity)
                )
            yield FsmTraceEntry(
                cycle, row, instr, executing_state, ports.port,
                addr.address, data.background, operation,
            )
            if outputs.addr_inc:
                addr.increment()
            if outputs.done:
                hold_pending = False
                fsm.reset()
                buffer.advance()
                if buffer.pointer == 0:
                    # Wrapped past the last row with no loop rows: done.
                    return
            cycle += 1
        raise RuntimeError(
            f"FSM program {self.program.name!r} did not terminate within "
            f"{bound} cycles — malformed control flow?"
        )

    def operations(self) -> Iterator[MemoryOperation]:
        for entry in self.trace():
            if entry.operation is not None:
                yield entry.operation

    # -- area model ----------------------------------------------------------

    def hardware(self) -> HardwareSpec:
        caps = self.capabilities
        spec = HardwareSpec(
            name="Prog. FSM-Based",
            notes=(
                f"{self.buffer.rows} buffer rows x {self.buffer.width} bits; "
                f"program {self.program.name!r} uses {len(self.program)} rows"
            ),
        )
        spec.extend(self.buffer.hardware())
        spec.add(Register("controller/lower FSM state register", 3))
        spec.add(
            LogicBlock(
                "controller/lower FSM logic",
                lower_fsm_truth_table().gate_equivalents(),
            )
        )
        spec.add(XorArray("controller/base polarity XOR stage", 2))
        spec.add(Counter("controller/pause timer", 16))
        spec.extend(shared_datapath_hardware(caps.n_words, caps.width, caps.ports))
        return spec
