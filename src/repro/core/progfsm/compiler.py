"""March test → SM instruction compiler for the programmable FSM unit.

Each march element must match one of the SM0–SM7 patterns; a
:class:`~repro.march.element.Pause` sets the *hold* bit of the following
element's instruction (the lower FSM waits in its Done state before the
element runs).  All pauses of an algorithm must share one duration — the
hold timer is a single controller register.

Compilation fails with :class:`CompileError` for algorithms outside the
SM library — that failure is the architecture's MEDIUM-flexibility
boundary, measured by :mod:`repro.eval.flexibility`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.controller import ControllerCapabilities
from repro.core.progfsm.instruction import DataControl, FsmInstruction
from repro.core.progfsm.march_elements import match_element
from repro.march.element import AddressOrder, MarchElement, Pause
from repro.march.library import RETENTION_PAUSE
from repro.march.test import MarchTest


class CompileError(ValueError):
    """Raised when an algorithm cannot be realised with SM0–SM7."""


@dataclass
class FsmProgram:
    """Compiled upper-buffer contents plus provenance.

    Attributes:
        name: source algorithm name.
        instructions: upper-buffer rows, ending with any loop rows.
        source: the march test the program realises.
        pause_duration: hold time applied before hold-flagged elements.
    """

    name: str
    instructions: List[FsmInstruction]
    source: MarchTest
    pause_duration: int = RETENTION_PAUSE

    def __len__(self) -> int:
        return len(self.instructions)


def compile_to_sm(
    test: MarchTest,
    capabilities: ControllerCapabilities,
    verify: bool = True,
) -> FsmProgram:
    """Compile a march test for the programmable FSM controller.

    The static verifier runs first (``target="progfsm"``), so every
    flexibility-boundary violation is reported with its rule id and
    element location before the row-by-row translation below repeats
    the same checks as a safety net.

    Raises:
        CompileError: when an element matches no SM pattern, when a
            pause is not followed by an element, or when pauses disagree
            on duration.
    """
    if verify:
        from repro.analysis.verifier import verify_march

        report = verify_march(test, target="progfsm")
        if report.has_errors:
            details = "; ".join(str(d) for d in report.errors)
            raise CompileError(f"{test.name}: {details}")
    rows: List[FsmInstruction] = []
    pending_hold = False
    pause_duration: Optional[int] = None
    for item in test.items:
        if isinstance(item, Pause):
            if pending_hold:
                raise CompileError(
                    f"{test.name}: consecutive pauses cannot be expressed — "
                    "each instruction carries a single hold bit"
                )
            if pause_duration is None:
                pause_duration = item.duration
            elif pause_duration != item.duration:
                raise CompileError(
                    f"{test.name}: pauses of different durations "
                    f"({pause_duration} vs {item.duration}); the hold timer "
                    "is a single register"
                )
            pending_hold = True
            continue
        match = match_element(item)
        if match is None:
            raise CompileError(
                f"{test.name}: element '{item}' matches no SM0-SM7 pattern "
                "(programmable FSM flexibility boundary)"
            )
        sm, data, compare = match
        rows.append(
            FsmInstruction(
                hold=pending_hold,
                addr_down=item.order.resolve() is AddressOrder.DOWN,
                data_ctrl=DataControl.BASE1 if data else DataControl.BASE0,
                compare=bool(compare),
                mode=sm,
            )
        )
        pending_hold = False
    if pending_hold:
        raise CompileError(
            f"{test.name}: trailing pause has no following element to hold"
        )
    if capabilities.word_oriented:
        rows.append(FsmInstruction(data_ctrl=DataControl.LOOP_BG))
    if capabilities.multiport:
        rows.append(FsmInstruction(data_ctrl=DataControl.LOOP_PORT))
    program = FsmProgram(
        name=test.name,
        instructions=rows,
        source=test,
        pause_duration=pause_duration if pause_duration is not None else RETENTION_PAUSE,
    )
    if verify:
        # Post-compile gate, mirroring the microcode assembler: the rows
        # just emitted are proved terminating against the target
        # geometry (PF rules + abstract interpretation) before anyone
        # can load them.
        from repro.analysis.verifier import verify_fsm_program

        verify_fsm_program(program, capabilities).raise_on_errors()
    return program


def is_realizable(test: MarchTest) -> bool:
    """Whether the SM architecture can run ``test`` at all."""
    try:
        compile_to_sm(test, ControllerCapabilities(n_words=2))
        return True
    except CompileError:
        return False
