"""The paper's contribution: programmable memory BIST architectures.

Three controller families, all cycle-accurate at the level of issued
memory operations and all verified against the golden stream of
:func:`repro.march.simulator.expand`:

* :mod:`repro.core.microcode` — the proposed microcode-based controller
  (Fig. 1/2 of the paper): storage unit, instruction counter, branch and
  reference registers, REPEAT compression of symmetric algorithms.
* :mod:`repro.core.progfsm` — the proposed programmable FSM-based
  controller (Fig. 3/4/5): SM0–SM7 march-element library, 2-D circular
  instruction buffer, parametric 7-state lower FSM.
* :mod:`repro.core.hardwired` — the non-programmable baselines: a march
  algorithm synthesised directly into a dedicated FSM.

:mod:`repro.core.bist_unit` composes any controller with the shared
datapath (:mod:`repro.core.datapath`) and a memory under test into a
runnable BIST unit; :mod:`repro.core.transparent` adds the
transparent-test transform for the on-line-testing extension mentioned
in the paper's conclusion.
"""

from repro.core.controller import BistController, ControllerCapabilities, Flexibility
from repro.core.datapath import AddressGenerator, DataGenerator, PortSequencer
from repro.core.bist_unit import BistResult, MemoryBistUnit
from repro.core.microcode import MicrocodeBistController, assemble
from repro.core.progfsm import ProgrammableFsmBistController, compile_to_sm
from repro.core.hardwired import HardwiredBistController

__all__ = [
    "AddressGenerator",
    "BistController",
    "BistResult",
    "ControllerCapabilities",
    "DataGenerator",
    "Flexibility",
    "HardwiredBistController",
    "MemoryBistUnit",
    "MicrocodeBistController",
    "PortSequencer",
    "ProgrammableFsmBistController",
    "assemble",
    "compile_to_sm",
]
