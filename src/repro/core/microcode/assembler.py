"""March-test → microcode assembler.

Translation scheme (one microcode row per march operation):

* every operation of an element becomes one instruction carrying the
  element's traversal-order bit; the element's final operation also sets
  ``ADDR_INC`` and the ``LOOP`` condition, which implements the
  per-address sweep through the branch register;
* a retention :class:`~repro.march.element.Pause` becomes a ``HOLD``
  instruction (pause durations must be powers of two — the pause timer
  is a 2^k counter);
* when the algorithm is symmetric and ``compress`` is enabled, the
  mirrored half is dropped and replaced by a single ``REPEAT``
  instruction whose field bits carry the auxiliary complements
  (:class:`repro.march.properties.AuxComplement`) — this reproduces the
  paper's 9-instruction March C program of Fig. 2 exactly;
* the program tail implements the capability loops: ``NEXT_BG`` when the
  controller supports word-oriented memories, ``INC_PORT`` when it
  supports multiport memories, a plain ``TERMINATE`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.controller import ControllerCapabilities
from repro.core.microcode.instruction import MicroInstruction
from repro.core.microcode.isa import ConditionOp, MAX_HOLD_EXPONENT
from repro.march.element import AddressOrder, MarchElement, Pause
from repro.march.properties import AuxComplement, SymmetricSplit, symmetric_split
from repro.march.test import MarchItem, MarchTest


class AssemblyError(ValueError):
    """Raised when a march test cannot be encoded as microcode."""


@dataclass
class MicrocodeProgram:
    """An assembled microcode program plus provenance metadata.

    Attributes:
        name: source algorithm name.
        instructions: the microcode rows, in storage order.
        source: the march test the program realises.
        compressed: True when REPEAT compression was applied.
        split: the symmetric decomposition used (when compressed).
    """

    name: str
    instructions: List[MicroInstruction]
    source: MarchTest
    compressed: bool = False
    split: Optional[SymmetricSplit] = None

    def __len__(self) -> int:
        return len(self.instructions)


def _pause_exponent(duration: int, item_index: int) -> int:
    """Exponent k with 2**k == duration; pauses must be powers of two.

    Validated here, at assembly time, so a bad retention pause fails
    with the offending element named instead of surfacing as a cryptic
    instruction-encoding error in the controller.
    """
    if duration <= 0 or duration & (duration - 1):
        raise AssemblyError(
            f"item {item_index} (Del({duration})): pause duration "
            f"{duration} is not a power of two; the HOLD pause timer is "
            "a 2^k counter"
        )
    exponent = duration.bit_length() - 1
    if exponent > MAX_HOLD_EXPONENT:
        raise AssemblyError(
            f"item {item_index} (Del({duration})): pause duration "
            f"{duration} exceeds the HOLD timer's exponent range"
        )
    return exponent


def _element_rows(element: MarchElement) -> List[MicroInstruction]:
    """One instruction per operation; the last loops the address sweep."""
    down = element.order.resolve() is AddressOrder.DOWN
    rows: List[MicroInstruction] = []
    for index, op in enumerate(element.ops):
        last = index == len(element.ops) - 1
        rows.append(
            MicroInstruction(
                addr_inc=last,
                addr_down=down,
                data_inv=op.is_write and op.polarity == 1,
                compare=op.is_read and op.polarity == 1,
                read_en=op.is_read,
                write_en=op.is_write,
                cond=ConditionOp.LOOP if last else ConditionOp.NOP,
            )
        )
    return rows


def _item_rows(item: MarchItem, item_index: int) -> List[MicroInstruction]:
    if isinstance(item, Pause):
        return [
            MicroInstruction(
                cond=ConditionOp.HOLD,
                hold_exponent=_pause_exponent(item.duration, item_index),
            )
        ]
    return _element_rows(item)


def _repeat_row(aux: AuxComplement) -> MicroInstruction:
    return MicroInstruction(
        addr_down=aux.address_order,
        data_inv=aux.data,
        compare=aux.compare,
        cond=ConditionOp.REPEAT,
    )


def _tail_rows(capabilities: ControllerCapabilities) -> List[MicroInstruction]:
    rows: List[MicroInstruction] = []
    if capabilities.word_oriented:
        rows.append(MicroInstruction(data_inc=True, cond=ConditionOp.NEXT_BG))
    if capabilities.multiport:
        rows.append(MicroInstruction(cond=ConditionOp.INC_PORT))
    else:
        rows.append(MicroInstruction(cond=ConditionOp.TERMINATE))
    return rows


def assemble(
    test: MarchTest,
    capabilities: ControllerCapabilities,
    compress: bool = True,
    verify: bool = True,
) -> MicrocodeProgram:
    """Assemble a march test into a microcode program.

    Args:
        test: the algorithm to encode.
        capabilities: target controller configuration; decides which
            loop instructions the program tail needs.
        compress: apply REPEAT compression when the algorithm is
            symmetric with a single-row initialisation prefix (March C,
            March A and their '+'/'++' derivatives all qualify).
        verify: run the static verifier over the finished program and
            raise on error-severity findings.  Disable to inspect a
            program the verifier would reject (``repro lint`` does).

    Raises:
        AssemblyError: for non-power-of-two pause durations (the
            offending item is named in the message).
        VerificationError: when ``verify`` is set and the program fails
            static verification (a subclass of :class:`AssemblyError`).
    """
    split = symmetric_split(test, require_single_op_prefix=True) if compress else None
    rows: List[MicroInstruction] = []
    if split is not None:
        for element in split.prefix:
            rows.extend(_element_rows(element))
        for element in split.body:
            rows.extend(_element_rows(element))
        rows.append(_repeat_row(split.aux))
        suffix_start = len(test.items) - len(split.suffix)
        for offset, item in enumerate(split.suffix):
            rows.extend(_item_rows(item, suffix_start + offset))
    else:
        for item_index, item in enumerate(test.items):
            rows.extend(_item_rows(item, item_index))
    rows.extend(_tail_rows(capabilities))
    program = MicrocodeProgram(
        name=test.name,
        instructions=rows,
        source=test,
        compressed=split is not None,
        split=split,
    )
    if verify:
        from repro.analysis.verifier import verify_program

        verify_program(program, capabilities).raise_on_errors()
    return program
