"""Cycle-accurate model of the microcode-based BIST controller.

The execution semantics live in two places that share one source of
truth:

* :func:`decoder_outputs` — the combinational instruction-decoder
  function, mapping (condition field, status signals) to control
  strobes.  The simulator evaluates it every cycle *and* the area model
  synthesises its full truth table through Quine–McCluskey, so the
  "instruction decode module" area in Table 1 is genuinely derived from
  the same logic the simulation runs.
* :class:`MicrocodeBistController` — the sequential machine: instruction
  counter, branch register, reference register, repeat bit, and the
  shared datapath (address/data/port generators).

Non-sequential control transfers (REPEAT's "Reset to 1", NEXT_BG's and
INC_PORT's "Reset to 0") also reseed the branch register with the
destination so that element looping restarts correctly — this is the
"Reset to Branch Register" interplay of the paper's Fig. 1, made
concrete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Union

from repro.area.components import (
    Counter,
    HardwareSpec,
    LogicBlock,
    Register,
    XorArray,
)
from repro.area.logic_min import TruthTable
from repro.core.controller import (
    BistController,
    ControllerCapabilities,
    Flexibility,
)
from repro.core.datapath import (
    AddressGenerator,
    DataGenerator,
    PortSequencer,
    shared_datapath_hardware,
)
from repro.core.microcode.assembler import MicrocodeProgram, assemble
from repro.core.microcode.instruction import MicroInstruction
from repro.core.microcode.isa import PAUSE_TIMER_BITS, ConditionOp
from repro.core.microcode.storage import DEFAULT_ROWS, StorageUnit
from repro.march.element import AddressOrder
from repro.march.simulator import MemoryOperation
from repro.march.test import MarchTest

#: Instruction-decoder control strobes, in truth-table output order.
DECODER_OUTPUTS = (
    "ic_inc",          # instruction counter +1
    "ic_reset0",       # instruction counter := 0   ("Reset to 0")
    "ic_reset1",       # instruction counter := 1   ("Reset to 1")
    "ic_load_branch",  # instruction counter := branch register
    "branch_save",     # branch register := IC + 1  (Save Address Condition)
    "ref_load",        # reference register := aux fields; repeat bit := 1
    "ref_clear",       # reference register := 0;    repeat bit := 0
    "data_step",       # pulse the data-background generator
    "data_reset",      # reset the data-background generator
    "port_step",       # activate the next port
    "addr_restart",    # next element reloads the address sweep start
    "test_end",        # assert Test End
)


def decoder_outputs(
    cond: ConditionOp,
    last_address: bool,
    last_data: bool,
    last_port: bool,
    repeat_bit: bool,
    hold_done: bool = True,
) -> Dict[str, bool]:
    """The instruction decoder as a pure combinational function.

    Args:
        cond: the instruction's 3-bit condition field.
        last_address / last_data / last_port: status flags from the
            address generator, data generator and port sequencer.
        repeat_bit: the reference register's repeat-loop bit.
        hold_done: pause-timer expiry (HOLD instructions stall until it
            asserts; the stream model treats pauses as single events, so
            the simulator always passes True).

    Returns:
        A strobe → bool map covering every name in
        :data:`DECODER_OUTPUTS`.
    """
    out = {name: False for name in DECODER_OUTPUTS}
    if cond is ConditionOp.NOP:
        out["ic_inc"] = True
    elif cond is ConditionOp.LOOP:
        if last_address:
            out["branch_save"] = True
            out["ic_inc"] = True
            out["addr_restart"] = True
        else:
            out["ic_load_branch"] = True
    elif cond is ConditionOp.REPEAT:
        if repeat_bit:
            # Second execution: acts as a NOP crossing an element
            # boundary, so the branch register must re-seed for the
            # following element's LOOP and the sweep must restart.
            out["ref_clear"] = True
            out["ic_inc"] = True
            out["branch_save"] = True
            out["addr_restart"] = True
        else:
            out["ref_load"] = True
            out["ic_reset1"] = True
            out["addr_restart"] = True
    elif cond is ConditionOp.NEXT_BG:
        if last_data:
            out["data_reset"] = True
            out["ic_inc"] = True
            out["branch_save"] = True
            out["addr_restart"] = True
        else:
            out["data_step"] = True
            out["ic_reset0"] = True
            out["addr_restart"] = True
    elif cond is ConditionOp.HOLD:
        # A pause sits between elements: falling through re-seeds the
        # branch register and restarts the sweep for the next element.
        out["ic_inc"] = hold_done
        out["branch_save"] = hold_done
        out["addr_restart"] = hold_done
    elif cond is ConditionOp.INC_PORT:
        if last_port:
            out["test_end"] = True
        else:
            out["port_step"] = True
            out["ic_reset0"] = True
            out["data_reset"] = True
            out["addr_restart"] = True
    elif cond is ConditionOp.SAVE:
        out["branch_save"] = True
        out["ic_inc"] = True
    elif cond is ConditionOp.TERMINATE:
        out["test_end"] = True
    return out


def decoder_truth_table() -> TruthTable:
    """Full truth table of the instruction decoder (for synthesis).

    Inputs, LSB first: cond[0..2], last_address, last_data, last_port,
    repeat_bit, hold_done — 8 variables, 256 minterms.
    """
    outputs: Dict[str, set] = {name: set() for name in DECODER_OUTPUTS}
    for minterm in range(256):
        cond = ConditionOp(minterm & 0b111)
        strobes = decoder_outputs(
            cond,
            last_address=bool(minterm >> 3 & 1),
            last_data=bool(minterm >> 4 & 1),
            last_port=bool(minterm >> 5 & 1),
            repeat_bit=bool(minterm >> 6 & 1),
            hold_done=bool(minterm >> 7 & 1),
        )
        for name, value in strobes.items():
            if value:
                outputs[name].add(minterm)
    return TruthTable(8, outputs)


@dataclass(frozen=True)
class TraceEntry:
    """One executed microcode cycle, for architecture-level inspection."""

    cycle: int
    ic: int
    instruction: MicroInstruction
    port: int
    address: int
    background: int
    repeat_bit: bool
    operation: Optional[MemoryOperation]


class MicrocodeBistController(BistController):
    """The paper's proposed microcode-based memory BIST controller.

    Args:
        test: a march algorithm (assembled on construction) or a
            pre-assembled :class:`MicrocodeProgram`.
        capabilities: memory geometry the controller hardware targets.
        storage_rows: storage-unit depth Z; ``None`` auto-sizes to
            ``max(DEFAULT_ROWS, len(program))`` so long programs (the
            '++' variants) grow the storage instead of failing.
        storage_cell: storage cell kind; ``'scan_dff'`` reproduces the
            Table 1/2 configuration, ``'scan_only'`` the Table 3
            redesign.
        compress: enable REPEAT compression during assembly.
        max_cycles: safety bound on executed instructions; ``None``
            derives a generous bound from the program and geometry.
        verify: statically verify the program before loading it (and on
            every :meth:`load`); raises
            :class:`~repro.analysis.verifier.VerificationError` on
            error-severity findings.  Disable only to study how the
            hardware behaves on a malformed program — the runtime
            cycle bound is then the last line of defence.
    """

    architecture = "Microcode-Based"
    flexibility = Flexibility.HIGH

    def __init__(
        self,
        test: Union[MarchTest, MicrocodeProgram],
        capabilities: ControllerCapabilities,
        storage_rows: Optional[int] = None,
        storage_cell: str = "scan_dff",
        compress: bool = True,
        max_cycles: Optional[int] = None,
        verify: bool = True,
    ) -> None:
        super().__init__(capabilities)
        self.verify = verify
        if isinstance(test, MarchTest):
            self.program = assemble(
                test, capabilities, compress=compress, verify=verify
            )
        elif verify:
            self._verify_program(test, storage_rows)
            self.program = test
        else:
            self.program = test
        if storage_rows is None:
            storage_rows = max(DEFAULT_ROWS, len(self.program.instructions))
        self.storage = StorageUnit(
            rows=storage_rows,
            cell=storage_cell,
            default_program=self.program.instructions,
        )
        self.storage.initialize_default()
        self.max_cycles = max_cycles
        # Datapath instances (rebuilt per run in operations()).
        self._addr = AddressGenerator(capabilities.n_words)
        self._data = DataGenerator(capabilities.width)
        self._ports = PortSequencer(capabilities.ports)

    def loaded_test(self) -> MarchTest:
        return self.program.source

    def _verify_program(
        self, program: MicrocodeProgram, storage_rows: Optional[int]
    ) -> None:
        """Static pre-load verification (the in-field safety gate)."""
        from repro.analysis.verifier import verify_program

        verify_program(
            program, self.capabilities, storage_rows=storage_rows
        ).raise_on_errors()

    def load(self, test: Union[MarchTest, MicrocodeProgram], compress: bool = True) -> None:
        """Load a different algorithm — no hardware change, the paper's
        point about programmability.  Verifies the program against this
        controller's capabilities and storage depth first (unless the
        controller was built with ``verify=False``)."""
        if isinstance(test, MarchTest):
            self.program = assemble(
                test, self.capabilities, compress=compress, verify=self.verify
            )
        else:
            if self.verify:
                self._verify_program(test, self.storage.rows)
            self.program = test
        self.storage.load(self.program.instructions)

    # -- execution -----------------------------------------------------------

    def _cycle_bound(self) -> int:
        caps = self.capabilities
        backgrounds = len(self._data.backgrounds)
        per_pass = max(1, len(self.program)) * max(1, caps.n_words)
        return 1000 + 20 * per_pass * backgrounds * caps.ports

    def trace(self) -> Iterator[TraceEntry]:
        """Cycle-by-cycle execution trace (used by the Fig. 1/2 bench)."""
        addr = AddressGenerator(self.capabilities.n_words)
        data = DataGenerator(self.capabilities.width)
        ports = PortSequencer(self.capabilities.ports)
        rows = len(self.program.instructions)
        ic = 0
        branch_reg = 0
        repeat_bit = False
        ref_order = ref_data = ref_compare = False
        restart_pending = True
        bound = self.max_cycles or self._cycle_bound()

        for cycle in range(bound):
            if ic >= rows:
                return  # instruction addresses exhausted: test end
            instr = self.storage.fetch(ic)

            direction = AddressOrder.DOWN if (instr.addr_down ^ ref_order) else AddressOrder.UP
            operation: Optional[MemoryOperation] = None
            if instr.is_memory_op:
                if restart_pending:
                    addr.start(direction)
                    restart_pending = False
                if instr.write_en:
                    polarity = int(instr.data_inv) ^ int(ref_data)
                    operation = MemoryOperation(
                        ports.port, addr.address, True, value=data.word(polarity)
                    )
                else:
                    polarity = int(instr.compare) ^ int(ref_compare)
                    operation = MemoryOperation(
                        ports.port, addr.address, False, expected=data.word(polarity)
                    )
            elif instr.cond is ConditionOp.HOLD:
                operation = MemoryOperation(
                    ports.port, 0, False, delay=instr.hold_duration
                )

            was_last = addr.last_address
            strobes = decoder_outputs(
                instr.cond,
                last_address=was_last,
                last_data=data.last_background,
                last_port=ports.last_port,
                repeat_bit=repeat_bit,
            )

            yield TraceEntry(
                cycle=cycle,
                ic=ic,
                instruction=instr,
                port=ports.port,
                address=addr.address,
                background=data.background,
                repeat_bit=repeat_bit,
                operation=operation,
            )

            # Address stepping: the ADDR_INC field, gated by !last_address.
            if instr.is_memory_op and instr.addr_inc and not was_last:
                addr.increment()

            # Register updates from the decoder strobes.
            if strobes["branch_save"]:
                branch_reg = ic + 1
            if strobes["ref_load"]:
                ref_order, ref_data, ref_compare = (
                    instr.addr_down,
                    instr.data_inv,
                    instr.compare,
                )
                repeat_bit = True
            if strobes["ref_clear"]:
                ref_order = ref_data = ref_compare = False
                repeat_bit = False
            if strobes["data_step"]:
                data.increment()
            if strobes["data_reset"]:
                data.reset()
            if strobes["port_step"]:
                ports.increment()
            if strobes["addr_restart"]:
                restart_pending = True
            if strobes["test_end"]:
                return

            # Instruction sequencing (exactly one of these fires).
            if strobes["ic_load_branch"]:
                ic = branch_reg
            elif strobes["ic_reset0"]:
                ic = 0
                branch_reg = 0
            elif strobes["ic_reset1"]:
                ic = 1
                branch_reg = 1
            elif strobes["ic_inc"]:
                ic += 1
        raise RuntimeError(
            f"microcode program {self.program.name!r} did not terminate within "
            f"{bound} cycles — malformed control flow?"
        )

    def operations(self) -> Iterator[MemoryOperation]:
        for entry in self.trace():
            if entry.operation is not None:
                yield entry.operation

    # -- area model ------------------------------------------------------------

    def hardware(self) -> HardwareSpec:
        caps = self.capabilities
        import math

        ic_bits = max(1, math.ceil(math.log2(self.storage.rows))) + 1
        branch_bits = max(1, math.ceil(math.log2(self.storage.rows)))
        spec = HardwareSpec(
            name=f"Microcode-Based ({self.storage.cell} storage)",
            notes=(
                f"Z={self.storage.rows} rows x {self.storage.width} bits; "
                f"program {self.program.name!r} uses {len(self.program)} rows"
            ),
        )
        spec.extend(self.storage.hardware())
        spec.add(Counter("controller/instruction counter", ic_bits, loadable=True))
        spec.add(Register("controller/branch register", branch_bits))
        spec.add(Register("controller/reference register", 4))
        spec.add(XorArray("controller/reference XOR stage", 3))
        spec.add(
            LogicBlock(
                "controller/instruction decoder",
                decoder_truth_table().gate_equivalents(),
            )
        )
        spec.add(Counter("controller/pause timer", PAUSE_TIMER_BITS))
        spec.extend(
            shared_datapath_hardware(caps.n_words, caps.width, caps.ports)
        )
        return spec
