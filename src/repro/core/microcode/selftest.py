"""Scan-path self-test of the microcode storage unit.

Section 3 of the paper argues a testability advantage of the scan-only
storage redesign: "The scan-path of the scan-only registers is easily
tested via the scan-in ports and could be used as a set of stimulus test
points to test the entire memory BIST unit" — simpler than testing a
small SRAM or ROM (the weakness it attributes to the architecture of its
ref. [9]).

This module implements that flow: shift a set of raw test patterns
through the scan chain, shift them back out, and diff.  The pattern set
(solid 0/1, both checkerboards, a row-index ripple) detects every
stuck-at cell in the chain and all shorts between adjacent chain bits —
the standard scan-chain pattern argument.  After the self-test, the
intended program is reloaded and read back (:func:`readback_verify`),
which is the paper's "stimulus test points" usage: a verified storage
unit then exercises the rest of the BIST unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.microcode.assembler import MicrocodeProgram
from repro.core.microcode.storage import StorageUnit


def standard_scan_patterns(rows: int, width: int) -> List[List[int]]:
    """The self-test pattern set, as raw bitstreams (row-major, LSB
    first): all-0, all-1, checkerboard, inverse checkerboard, and a
    row-ripple pattern that puts each row's index in its data bits."""
    total = rows * width
    all_zero = [0] * total
    all_one = [1] * total
    checker = [(i & 1) for i in range(total)]
    inverse = [(i & 1) ^ 1 for i in range(total)]
    ripple = [
        (row >> (bit % 8)) & 1
        for row in range(rows)
        for bit in range(width)
    ]
    return [all_zero, all_one, checker, inverse, ripple]


@dataclass(frozen=True)
class ScanTestResult:
    """Outcome of the storage scan self-test.

    Attributes:
        passed: every pattern shifted through unchanged.
        patterns_run: how many patterns were applied.
        failing_cells: distinct (row, bit) cells that corrupted at least
            one pattern.
    """

    passed: bool
    patterns_run: int
    failing_cells: Tuple[Tuple[int, int], ...]

    def __str__(self) -> str:
        if self.passed:
            return f"storage scan test: PASS ({self.patterns_run} patterns)"
        cells = ", ".join(f"({r},{b})" for r, b in self.failing_cells[:8])
        return (
            f"storage scan test: FAIL — {len(self.failing_cells)} cell(s): "
            f"{cells}"
        )


def scan_test(storage: StorageUnit) -> ScanTestResult:
    """Run the full scan self-test; restores the prior contents after.

    The test is destructive to the storage contents while running, as on
    silicon; the pre-test contents are captured through the scan chain
    first and shifted back in afterwards.
    """
    saved = storage.scan_dump()
    failing = set()
    patterns = standard_scan_patterns(storage.rows, storage.width)
    for pattern in patterns:
        storage.scan_load(pattern, validate=False)
        observed = storage.scan_dump()
        for index, (want, got) in enumerate(zip(pattern, observed)):
            if want != got:
                failing.add(divmod(index, storage.width))
    storage.scan_load(saved, validate=False)
    return ScanTestResult(
        passed=not failing,
        patterns_run=len(patterns),
        failing_cells=tuple(sorted(failing)),
    )


@dataclass(frozen=True)
class ReadbackResult:
    """Outcome of a program load-and-readback verification."""

    passed: bool
    mismatching_rows: Tuple[int, ...]

    def __str__(self) -> str:
        if self.passed:
            return "program readback: PASS"
        return f"program readback: FAIL at rows {list(self.mismatching_rows)}"


def readback_verify(
    storage: StorageUnit, program: MicrocodeProgram
) -> ReadbackResult:
    """Load ``program`` and verify every row reads back bit-exact.

    This is the pre-test confidence step a tester runs before trusting a
    BIST verdict: a storage defect that survives the scan test's pattern
    set (or appeared since) is caught against the intended program image.
    """
    storage.load(program.instructions)
    mismatches = []
    for row, instr in enumerate(program.instructions):
        if storage.word(row) != instr.encode():
            mismatches.append(row)
    return ReadbackResult(passed=not mismatches,
                          mismatching_rows=tuple(mismatches))
