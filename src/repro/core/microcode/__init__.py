"""Microcode-based memory BIST architecture (paper Fig. 1/2).

The controller consists of:

1. **storage unit** — a Z×10-bit buffer of microcode instructions
   (:mod:`~repro.core.microcode.storage`), loadable via scan;
2. **instruction counter** — log2(Z)+1-bit counter selecting the current
   instruction (the extra bit is the *test end* flag);
3. **instruction selector** — Z×10:10 mux;
4. **branch register** — log2(Z)-bit register holding the element-loop
   target, auto-updated on every *Last Address* event (the paper's "Save
   Address Condition" mechanism);
5. **instruction decoder** — interprets the 3-bit condition field;
6. **reference register** — 4-bit register (repeat bit + auxiliary
   address-order/data/compare complements) enabling single-REPEAT
   encoding of symmetric algorithms such as March C and March A.

The ISA is defined in :mod:`~repro.core.microcode.isa`, the cycle-
accurate model in :mod:`~repro.core.microcode.controller`, and the march
→ microcode translator (with REPEAT compression) in
:mod:`~repro.core.microcode.assembler`.
"""

from repro.core.microcode.isa import ConditionOp, INSTRUCTION_BITS
from repro.core.microcode.instruction import MicroInstruction
from repro.core.microcode.storage import StorageUnit
from repro.core.microcode.assembler import MicrocodeProgram, assemble
from repro.core.microcode.disassembler import disassemble
from repro.core.microcode.controller import MicrocodeBistController

__all__ = [
    "ConditionOp",
    "INSTRUCTION_BITS",
    "MicroInstruction",
    "MicrocodeBistController",
    "MicrocodeProgram",
    "StorageUnit",
    "assemble",
    "disassemble",
]
