"""Microcode disassembler: render programs the way Fig. 2 prints them."""

from __future__ import annotations

from typing import List

from repro.core.microcode.assembler import MicrocodeProgram
from repro.core.microcode.instruction import MicroInstruction
from repro.core.microcode.isa import ConditionOp


def _operation_text(instr: MicroInstruction) -> str:
    if instr.cond is ConditionOp.HOLD:
        return f"hold {instr.hold_duration}"
    if instr.write_en:
        return f"w{int(instr.data_inv)}"
    if instr.read_en:
        return f"r{int(instr.compare)}"
    if instr.cond is ConditionOp.REPEAT:
        aux = []
        if instr.addr_down:
            aux.append("order")
        if instr.data_inv:
            aux.append("data")
        if instr.compare:
            aux.append("compare")
        return f"repeat(~{'+'.join(aux) or 'none'})"
    return "-"


def disassemble_instruction(instr: MicroInstruction) -> str:
    """One-line rendering of a microcode word."""
    order = "down" if instr.addr_down else "up"
    fields = [
        f"{_operation_text(instr):16s}",
        f"addr={order}{'+inc' if instr.addr_inc else ''}",
    ]
    if instr.data_inc:
        fields.append("data+inc")
    fields.append(instr.cond.name)
    return "  ".join(fields)


def disassemble(program: MicrocodeProgram) -> str:
    """Multi-line listing of a full program, with provenance header."""
    lines: List[str] = [
        f"; program: {program.name}  ({len(program)} instructions, "
        f"{'REPEAT-compressed' if program.compressed else 'uncompressed'})"
    ]
    if program.split is not None:
        lines.append(
            f"; symmetric body of {len(program.split.body)} element(s), "
            f"aux complement: {program.split.aux}"
        )
    for index, instr in enumerate(program.instructions):
        lines.append(f"{index:3d}: {disassemble_instruction(instr)}   "
                     f"[{instr.encode():#05x}]")
    return "\n".join(lines)
