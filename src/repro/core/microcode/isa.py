"""Microcode instruction-set definition.

The paper specifies a 10-bit microcode word: "a 2-bit field for address
generation, 2-bit for data generation, 1-bit for compare, 2-bits for
read/write and a 3-bit field to control the flow".  Our concrete bit
layout (LSB first)::

    [0]   ADDR_INC   hold / increment the address generator
    [1]   ADDR_DOWN  up / down traversal order of this element
    [2]   DATA_INC   hold / increment the data-background generator
    [3]   DATA_INV   true / inverted test data (write polarity)
    [4]   COMPARE    expected-data polarity (read compare polarity)
    [6:5] READ_EN / WRITE_EN
    [9:7] condition field (:class:`ConditionOp`)

Two condition ops reuse otherwise-idle fields as operands, a standard
microcode trick that keeps the word at 10 bits:

* ``HOLD`` performs no memory access, so bits [6:0] carry the pause
  duration as a power-of-two exponent (the pause timer is a programmable
  2^k counter);
* ``REPEAT`` loads the reference register from its ADDR_DOWN / DATA_INV /
  COMPARE bits — those are exactly the auxiliary complement values.

Condition semantics (fixed-point of Section 2.1's signal description):

=============  ==============================================================
``NOP``        fall through to the next instruction.
``LOOP``       element loop: if *Last Address*, copy IC+1 into the branch
               register (the automatic "Save Address Condition" on last
               address) and fall through; otherwise increment the address
               generator and branch to the branch register.
``REPEAT``     symmetric-algorithm repeat: first execution loads the
               reference register's auxiliary complements from this
               instruction's fields, sets the repeat bit and branches to
               instruction 1 (the decoder's "Reset to 1" path — the body
               of a symmetric algorithm always follows the single-
               instruction initialisation element); second execution acts
               as a NOP that clears the repeat bit and reference register.
``NEXT_BG``    background loop: if not *Last Data*, increment the data
               generator and reset the instruction counter to 0 ("Reset
               to 0"); else reset the data generator and fall through.
``HOLD``       retention pause of 2^exponent time units, then fall through.
``INC_PORT``   port loop: if not *Last Port*, activate the next port and
               reset the instruction counter to 0; else terminate.
``SAVE``       copy IC+1 into the branch register explicitly.
``TERMINATE``  unconditional test end (the *Terminate* signal).
=============  ==============================================================
"""

from __future__ import annotations

import enum

#: Width of one microcode word.
INSTRUCTION_BITS = 10

# Field bit positions.
BIT_ADDR_INC = 0
BIT_ADDR_DOWN = 1
BIT_DATA_INC = 2
BIT_DATA_INV = 3
BIT_COMPARE = 4
BIT_READ_EN = 5
BIT_WRITE_EN = 6
COND_SHIFT = 7
COND_MASK = 0b111

#: Mask of the bits reused as the HOLD pause exponent.
HOLD_EXPONENT_MASK = 0b0111_1111
#: Largest representable pause: 2**MAX_HOLD_EXPONENT time units.
MAX_HOLD_EXPONENT = HOLD_EXPONENT_MASK
#: Width of the pause timer counter.  The 7-bit HOLD exponent field can
#: encode pauses far beyond what the timer hardware counts; exponents
#: above this limit are flagged by the static verifier (rule MC006).
PAUSE_TIMER_BITS = 16


class ConditionOp(enum.IntEnum):
    """The 3-bit flow-control field of the microcode word."""

    NOP = 0
    LOOP = 1
    REPEAT = 2
    NEXT_BG = 3
    HOLD = 4
    INC_PORT = 5
    SAVE = 6
    TERMINATE = 7

    @property
    def is_memory_op_allowed(self) -> bool:
        """Whether the instruction may also drive a read/write."""
        return self in (ConditionOp.NOP, ConditionOp.LOOP)
