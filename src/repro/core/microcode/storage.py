"""The microcode storage unit (the Z×Y buffer of Fig. 1).

The storage unit holds the microcode program.  Two properties matter to
the paper's evaluation:

* it is written only at test setup (through the scan path) and read at
  one row per instruction — it never shifts at functional speed, so it
  can be built from IBM's *scan-only* cells, 4–5× smaller than full scan
  flip-flops (Table 3's "adjusted" controller);
* a 2-bit *Initialize* input selects between retaining contents, loading
  the hard default program, or accepting a custom scan-load.

The model keeps both views: decoded instructions for execution and the
encoded bit matrix with a behavioural scan chain (``scan_load`` /
``scan_dump``), which the test suite uses to show program load/readback
works bit-exactly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.area.components import Decoder, Mux, Register
from repro.core.microcode.instruction import MicroInstruction
from repro.core.microcode.isa import INSTRUCTION_BITS

#: Default storage depth, sized for the paper's Table 1/2 workload —
#: "test algorithms ... with the number of operations comparable to
#: March C and March A", including the retention ('+') variants: the
#: largest REPEAT-compressed program of that class is March A+ at 17
#: rows (word-oriented multiport tail included).  The '++' triple-read
#: variants need up to 27 rows; the controller auto-grows its storage
#: when constructed with such a program (see
#: :class:`repro.core.microcode.controller.MicrocodeBistController`),
#: and the storage-depth ablation benchmark sweeps this parameter.
DEFAULT_ROWS = 20


class StorageUnit:
    """Z-row, 10-bit-wide microcode store with a behavioural scan chain.

    Args:
        rows: storage depth Z.
        cell: storage cell kind for the area model ('scan_dff' for the
            Table 1/2 configuration, 'scan_only' for the Table 3
            redesign).
        default_program: instructions loaded by :meth:`initialize_default`
            (the paper's hard-wired default microcodes).
    """

    def __init__(
        self,
        rows: int = DEFAULT_ROWS,
        cell: str = "scan_dff",
        default_program: Optional[Sequence[MicroInstruction]] = None,
    ) -> None:
        if rows <= 1:
            raise ValueError(f"storage needs at least two rows, got {rows}")
        self.rows = rows
        self.cell = cell
        self.default_program: List[MicroInstruction] = list(default_program or [])
        if len(self.default_program) > rows:
            raise ValueError(
                f"default program ({len(self.default_program)} rows) exceeds "
                f"storage depth {rows}"
            )
        self._words: List[int] = [0] * rows
        # Manufacturing defects in the storage cells themselves:
        # (row, bit) -> stuck value.  Applied on every cell update, which
        # is how the scan self-test (repro.core.microcode.selftest)
        # observes them.
        self._stuck_bits: dict = {}

    #: Scan-clock divider of scan-only cells: the paper notes IBM's
    #: scan-only storage cells "operate in about 1/8 or 1/6 of
    #: functional clock rate" — program loads shift at that slow clock.
    SCAN_CLOCK_DIVIDER = 6

    @property
    def width(self) -> int:
        return INSTRUCTION_BITS

    def scan_load_cycles(self) -> int:
        """Functional-clock cycles to shift a full program image in.

        One scan-clock tick per chain bit; scan-only cells tick at
        ``1/SCAN_CLOCK_DIVIDER`` of the functional clock, full-scan
        cells at functional rate.  This is the reprogramming latency the
        SoC study charges per algorithm reload — and it is negligible
        against the test's memory operations, which is why the paper's
        "slower, smaller" scan-only trade-off is free in practice.
        """
        divider = self.SCAN_CLOCK_DIVIDER if self.cell == "scan_only" else 1
        return self.rows * self.width * divider

    def _apply_defects(self, row: int, word: int) -> int:
        for (defect_row, bit), value in self._stuck_bits.items():
            if defect_row == row:
                if value:
                    word |= 1 << bit
                else:
                    word &= ~(1 << bit)
        return word

    def inject_storage_defect(self, row: int, bit: int, value: int) -> None:
        """Force one storage cell stuck at ``value`` (test machinery)."""
        if not 0 <= row < self.rows or not 0 <= bit < self.width:
            raise IndexError(f"storage cell ({row},{bit}) out of range")
        if value not in (0, 1):
            raise ValueError(f"stuck value must be 0 or 1, got {value!r}")
        self._stuck_bits[(row, bit)] = value
        self._words[row] = self._apply_defects(row, self._words[row])

    def clear_storage_defects(self) -> None:
        self._stuck_bits.clear()

    @property
    def has_storage_defects(self) -> bool:
        return bool(self._stuck_bits)

    def load(self, program: Sequence[MicroInstruction]) -> None:
        """Load a program into rows 0..len-1; remaining rows cleared."""
        if len(program) > self.rows:
            raise ValueError(
                f"program ({len(program)} instructions) exceeds storage depth "
                f"{self.rows}"
            )
        self._words = [instr.encode() for instr in program]
        self._words.extend([0] * (self.rows - len(program)))
        self._words = [
            self._apply_defects(row, word) for row, word in enumerate(self._words)
        ]

    def initialize_default(self) -> None:
        """The *Initialize* input's default-microcode load."""
        self.load(self.default_program)

    def fetch(self, row: int) -> MicroInstruction:
        """Instruction-selector read of one row."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range 0..{self.rows - 1}")
        return MicroInstruction.decode(self._words[row])

    def word(self, row: int) -> int:
        return self._words[row]

    # -- behavioural scan chain ------------------------------------------

    def scan_load(self, bits: Iterable[int], validate: bool = True) -> None:
        """Shift a full bitstream in through the scan path.

        The chain is row-major, LSB first: exactly ``rows × 10`` bits.

        Args:
            bits: the bitstream.
            validate: decode-check every word so a bad program fails at
                load time rather than mid-test.  The scan *self-test*
                passes ``False`` — raw test patterns (checkerboards) are
                not valid instructions and never execute.
        """
        stream = list(bits)
        expected = self.rows * self.width
        if len(stream) != expected:
            raise ValueError(
                f"scan stream must be {expected} bits, got {len(stream)}"
            )
        for row in range(self.rows):
            word = 0
            for bit in range(self.width):
                word |= (stream[row * self.width + bit] & 1) << bit
            if validate:
                MicroInstruction.decode(word)
            self._words[row] = self._apply_defects(row, word)

    def scan_dump(self) -> List[int]:
        """Shift the full contents out (row-major, LSB first)."""
        stream: List[int] = []
        for word in self._words:
            for bit in range(self.width):
                stream.append((word >> bit) & 1)
        return stream

    # -- area model --------------------------------------------------------

    def hardware(self) -> List:
        """Storage array + row decode + instruction selector."""
        return [
            Register("controller/storage unit", self.width, rows=self.rows,
                     cell=self.cell),
            Decoder("controller/storage row decode", self.rows),
            Mux("controller/instruction selector", self.rows, self.width),
        ]
