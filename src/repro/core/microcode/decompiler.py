"""Microcode → march-test decompiler.

The inverse of the assembler: reconstructs the march algorithm a
microcode program realises.  Needed by the field-programming flow
(:mod:`repro.core.programming`): a program loaded from a file carries no
source algorithm, so the decompiler recovers one — and because the
assembler/decompiler pair is semantics-preserving, the recovered test
expands to exactly the operation stream the program executes.

Decompilation rules (mirror of the assembler's translation scheme):

* consecutive memory-op rows up to and including a ``LOOP`` row form one
  march element (order from the rows' ADDR_DOWN bit);
* a ``REPEAT`` row appends the auxiliary-complemented copy of the body
  (every element after the first) — the symmetric second half;
* a ``HOLD`` row becomes a retention pause;
* ``NEXT_BG`` / ``INC_PORT`` / ``TERMINATE`` rows end the algorithm
  (they encode capability loops, not test content).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.microcode.instruction import MicroInstruction
from repro.core.microcode.isa import ConditionOp
from repro.march.element import AddressOrder, MarchElement, Operation, OpKind, Pause
from repro.march.properties import AuxComplement
from repro.march.test import MarchItem, MarchTest


class DecompileError(ValueError):
    """Raised for programs the assembler could not have produced."""


def _row_operation(instr: MicroInstruction) -> Operation:
    if instr.write_en:
        return Operation(OpKind.WRITE, int(instr.data_inv))
    return Operation(OpKind.READ, int(instr.compare))


def decompile(
    instructions: Sequence[MicroInstruction], name: str = "decompiled"
) -> MarchTest:
    """Reconstruct the march test realised by a microcode program.

    Raises:
        DecompileError: for malformed programs (dangling element rows,
            REPEAT without a body, REPEAT before instruction 2, ...).
    """
    items: List[MarchItem] = []
    pending_ops: List[Operation] = []
    pending_down: Optional[bool] = None

    def flush_element() -> None:
        if pending_ops:
            raise DecompileError(
                "element rows not terminated by a LOOP instruction"
            )

    for index, instr in enumerate(instructions):
        if instr.is_memory_op:
            down = instr.addr_down
            if pending_down is not None and down != pending_down:
                raise DecompileError(
                    f"row {index}: traversal order changes mid-element"
                )
            pending_down = down
            pending_ops.append(_row_operation(instr))
            if instr.cond is ConditionOp.LOOP:
                if not instr.addr_inc:
                    raise DecompileError(
                        f"row {index}: LOOP row must increment the address"
                    )
                order = AddressOrder.DOWN if down else AddressOrder.UP
                items.append(MarchElement(order, pending_ops))
                pending_ops = []
                pending_down = None
            elif instr.cond is not ConditionOp.NOP:
                raise DecompileError(
                    f"row {index}: memory-op row with condition "
                    f"{instr.cond.name}"
                )
            continue

        flush_element()
        if instr.cond is ConditionOp.HOLD:
            items.append(Pause(instr.hold_duration))
        elif instr.cond is ConditionOp.REPEAT:
            elements = [i for i in items if isinstance(i, MarchElement)]
            if len(elements) < 2 or elements != list(items[: len(elements)]):
                raise DecompileError(
                    f"row {index}: REPEAT needs a pause-free prefix of at "
                    "least two elements (initialiser + body)"
                )
            aux = AuxComplement(
                address_order=instr.addr_down,
                data=instr.data_inv,
                compare=instr.compare,
            )
            for element in elements[1:]:
                items.append(aux.apply(element))
        elif instr.cond in (
            ConditionOp.NEXT_BG, ConditionOp.INC_PORT, ConditionOp.TERMINATE,
        ):
            break  # capability tail: algorithm content ends here
        elif instr.cond is ConditionOp.SAVE:
            continue  # explicit save has no test-content meaning
        else:
            raise DecompileError(
                f"row {index}: unexpected control row {instr.cond.name}"
            )

    flush_element()
    if not items:
        raise DecompileError("program contains no march elements")
    return MarchTest(name, items)
