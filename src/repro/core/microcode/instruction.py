"""The :class:`MicroInstruction` word and its encoding.

``encode``/``decode`` round-trip through the 10-bit word format of
:mod:`repro.core.microcode.isa`; the test suite property-checks the
round-trip over the full word space.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.microcode.isa import (
    BIT_ADDR_DOWN,
    BIT_ADDR_INC,
    BIT_COMPARE,
    BIT_DATA_INC,
    BIT_DATA_INV,
    BIT_READ_EN,
    BIT_WRITE_EN,
    COND_MASK,
    COND_SHIFT,
    ConditionOp,
    HOLD_EXPONENT_MASK,
    INSTRUCTION_BITS,
    MAX_HOLD_EXPONENT,
)


@dataclass(frozen=True)
class MicroInstruction:
    """One decoded microcode word.

    Attributes:
        addr_inc: increment the address generator after the operation
            (set on the last operation of each march element).
        addr_down: this element traverses addresses downward.
        data_inc: pulse the data-background generator (NEXT_BG rows).
        data_inv: write the inverted test data (march polarity 1).
        compare: expect the inverted test data on reads.
        read_en / write_en: memory operation strobes (at most one).
        cond: flow-control operation.
        hold_exponent: pause duration exponent — only meaningful when
            ``cond`` is ``HOLD`` (shares bits with the operand fields).
    """

    addr_inc: bool = False
    addr_down: bool = False
    data_inc: bool = False
    data_inv: bool = False
    compare: bool = False
    read_en: bool = False
    write_en: bool = False
    cond: ConditionOp = ConditionOp.NOP
    hold_exponent: int = 0

    def __post_init__(self) -> None:
        if self.read_en and self.write_en:
            raise ValueError("an instruction cannot both read and write")
        if (self.read_en or self.write_en) and not self.cond.is_memory_op_allowed:
            raise ValueError(
                f"condition op {self.cond.name} cannot carry a memory operation"
            )
        if not 0 <= self.hold_exponent <= MAX_HOLD_EXPONENT:
            raise ValueError(
                f"hold exponent {self.hold_exponent} out of range "
                f"0..{MAX_HOLD_EXPONENT}"
            )
        if self.hold_exponent and self.cond is not ConditionOp.HOLD:
            raise ValueError("hold_exponent is only valid for HOLD instructions")

    @property
    def is_memory_op(self) -> bool:
        return self.read_en or self.write_en

    @property
    def hold_duration(self) -> int:
        """Pause length of a HOLD instruction, in time units."""
        return 1 << self.hold_exponent

    def encode(self) -> int:
        """Pack into the 10-bit word."""
        word = int(self.cond) << COND_SHIFT
        if self.cond is ConditionOp.HOLD:
            return word | (self.hold_exponent & HOLD_EXPONENT_MASK)
        word |= int(self.addr_inc) << BIT_ADDR_INC
        word |= int(self.addr_down) << BIT_ADDR_DOWN
        word |= int(self.data_inc) << BIT_DATA_INC
        word |= int(self.data_inv) << BIT_DATA_INV
        word |= int(self.compare) << BIT_COMPARE
        word |= int(self.read_en) << BIT_READ_EN
        word |= int(self.write_en) << BIT_WRITE_EN
        return word

    @classmethod
    def decode(cls, word: int) -> "MicroInstruction":
        """Unpack a 10-bit word.

        Raises:
            ValueError: if the word has bits beyond the instruction width
                or encodes an inconsistent instruction.
        """
        if not 0 <= word < (1 << INSTRUCTION_BITS):
            raise ValueError(f"word {word:#x} exceeds {INSTRUCTION_BITS} bits")
        cond = ConditionOp((word >> COND_SHIFT) & COND_MASK)
        if cond is ConditionOp.HOLD:
            return cls(cond=cond, hold_exponent=word & HOLD_EXPONENT_MASK)
        return cls(
            addr_inc=bool((word >> BIT_ADDR_INC) & 1),
            addr_down=bool((word >> BIT_ADDR_DOWN) & 1),
            data_inc=bool((word >> BIT_DATA_INC) & 1),
            data_inv=bool((word >> BIT_DATA_INV) & 1),
            compare=bool((word >> BIT_COMPARE) & 1),
            read_en=bool((word >> BIT_READ_EN) & 1),
            write_en=bool((word >> BIT_WRITE_EN) & 1),
            cond=cond,
        )

    def with_cond(self, cond: ConditionOp) -> "MicroInstruction":
        return replace(self, cond=cond)
