"""Semantic validation of march tests.

A march test is *consistent* when every read expects the value the
preceding operations actually left in the cells — otherwise it fails on
a perfectly good memory.  Because a march element applies the same
operation sequence to every cell and sweeps the whole address space, the
array state between elements is always uniform, so consistency is
checkable symbolically in O(ops) without simulation:

* track the uniform cell polarity ``v`` (``None`` = power-on unknown);
* inside an element, track the per-cell value as the ops apply;
* a read expecting anything other than the tracked value (or reading
  before any initialising write) is an inconsistency.

The checker is the static counterpart of "expand on a fault-free memory
and look for failures"; the test suite property-checks that the two
always agree.  Controllers accept inconsistent programs (hardware cannot
know), so this is the lint step an algorithm author runs first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.march.element import MarchElement, Pause
from repro.march.test import MarchTest


@dataclass(frozen=True)
class Inconsistency:
    """One semantic problem found in a march test.

    Attributes:
        item_index: position in ``test.items``.
        op_index: operation position within the element (-1 for
            element-level problems).
        message: human-readable description.
    """

    item_index: int
    op_index: int
    message: str

    def __str__(self) -> str:
        return f"item {self.item_index}, op {self.op_index}: {self.message}"


def check_consistency(
    test: MarchTest, power_on: Optional[int] = None
) -> List[Inconsistency]:
    """All semantic problems of ``test`` (empty list = consistent).

    Args:
        test: the algorithm to lint.
        power_on: assumed uniform power-on cell value.  ``None`` (the
            default, and the right setting for real silicon) treats
            power-on contents as unknown, flagging any read issued
            before the first write; 0 matches the behavioural model's
            deterministic zero initialisation.
    """
    problems: List[Inconsistency] = []
    state: Optional[int] = power_on  # uniform cell polarity between elements
    for item_index, item in enumerate(test.items):
        if isinstance(item, Pause):
            continue
        current = state
        for op_index, op in enumerate(item.ops):
            if op.is_write:
                current = op.polarity
                continue
            if current is None:
                problems.append(
                    Inconsistency(
                        item_index,
                        op_index,
                        f"read {op} before any initialising write "
                        "(power-on contents are unknown)",
                    )
                )
            elif op.polarity != current:
                problems.append(
                    Inconsistency(
                        item_index,
                        op_index,
                        f"read {op} but the cells hold polarity {current} "
                        "at this point",
                    )
                )
        state = current
    return problems


def is_consistent(test: MarchTest, power_on: Optional[int] = None) -> bool:
    """Whether ``test`` passes on a fault-free memory."""
    return not check_consistency(test, power_on=power_on)


def assert_consistent(test: MarchTest) -> None:
    """Raise ``ValueError`` with the full problem list if inconsistent."""
    problems = check_consistency(test)
    if problems:
        details = "; ".join(str(p) for p in problems)
        raise ValueError(f"march test {test.name!r} is inconsistent: {details}")
