"""Library of standard march test algorithms.

Contains the six algorithms evaluated by the paper's Table 1/2 baselines
(March C, March C+, March C++, March A, March A+, March A++) plus the
classic tests (MATS family, March X/Y/B) that the programmable controllers
must also be able to realise — they are the *flexibility* workload of
:mod:`repro.eval.flexibility`.

Naming note: the paper's Eq. 1 "March C" is the 10N variant widely known
as March C- (the redundant mid-test read of the original 11N March C
removed).  We follow the paper and call the 10N variant ``MARCH_C``;
``MARCH_C_ORIG`` is the 11N original and ``MARCH_C_MINUS`` aliases
``MARCH_C``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.march.element import (
    AddressOrder,
    MarchElement,
    Operation,
    Pause,
    R0,
    R1,
    W0,
    W1,
)
from repro.march.test import MarchItem, MarchTest

UP = AddressOrder.UP
DOWN = AddressOrder.DOWN
ANY = AddressOrder.ANY

#: Default retention pause length (arbitrary retention-time units).  A
#: power of two, because the microcode HOLD pause timer is a 2^k counter;
#: chosen to exceed the decay time of every data-retention fault in
#: :mod:`repro.faults.retention`'s default universe.
RETENTION_PAUSE = 1024


def _element(order: AddressOrder, *ops: Operation) -> MarchElement:
    return MarchElement(order, ops)


# ---------------------------------------------------------------------------
# Classic short tests (flexibility workload).
# ---------------------------------------------------------------------------

ZERO_ONE = MarchTest(
    "Zero-One",
    [
        _element(ANY, W0),
        _element(ANY, R0),
        _element(ANY, W1),
        _element(ANY, R1),
    ],
)

MATS = MarchTest(
    "MATS",
    [
        _element(ANY, W0),
        _element(ANY, R0, W1),
        _element(ANY, R1),
    ],
)

MATS_PLUS = MarchTest(
    "MATS+",
    [
        _element(ANY, W0),
        _element(UP, R0, W1),
        _element(DOWN, R1, W0),
    ],
)

MATS_PLUS_PLUS = MarchTest(
    "MATS++",
    [
        _element(ANY, W0),
        _element(UP, R0, W1),
        _element(DOWN, R1, W0, R0),
    ],
)

MARCH_X = MarchTest(
    "March X",
    [
        _element(ANY, W0),
        _element(UP, R0, W1),
        _element(DOWN, R1, W0),
        _element(ANY, R0),
    ],
)

MARCH_Y = MarchTest(
    "March Y",
    [
        _element(ANY, W0),
        _element(UP, R0, W1, R1),
        _element(DOWN, R1, W0, R0),
        _element(ANY, R0),
    ],
)

# ---------------------------------------------------------------------------
# March C family (paper baselines).
# ---------------------------------------------------------------------------

MARCH_C = MarchTest(
    "March C",
    [
        _element(ANY, W0),
        _element(UP, R0, W1),
        _element(UP, R1, W0),
        _element(DOWN, R0, W1),
        _element(DOWN, R1, W0),
        _element(ANY, R0),
    ],
)

#: The paper's "March C" is the 10N March C-; keep the common alias.
MARCH_C_MINUS = MARCH_C.renamed("March C-")

MARCH_C_ORIG = MarchTest(
    "March C (original)",
    [
        _element(ANY, W0),
        _element(UP, R0, W1),
        _element(UP, R1, W0),
        _element(ANY, R0),
        _element(DOWN, R0, W1),
        _element(DOWN, R1, W0),
        _element(ANY, R0),
    ],
)


def _retention_suffix(pause: int = RETENTION_PAUSE) -> List[MarchItem]:
    """Retention-detection tail of the paper's '+' algorithm variants.

    After March C / March A complete, every cell holds 0.  The tail is
    ``Del; ^(r0,w1,r1); Del; ^(r1)``: wait for 0-state decay and verify,
    flip to 1, wait for 1-state decay and verify.
    """
    return [
        Pause(pause),
        _element(UP, R0, W1, R1),
        Pause(pause),
        _element(UP, R1),
    ]


def _tripled_reads(test: MarchTest, name: str) -> MarchTest:
    """Replace every read by three consecutive reads (the '++' variants).

    The repeated reads excite and detect disconnected pull-up/pull-down
    devices in the cells (modelled as stuck-open faults in
    :mod:`repro.faults.stuck_open`).
    """
    items: List[MarchItem] = []
    for item in test.items:
        if isinstance(item, Pause):
            items.append(item)
            continue
        ops: List[Operation] = []
        for op in item.ops:
            ops.extend([op, op, op] if op.is_read else [op])
        items.append(MarchElement(item.order, ops))
    return MarchTest(name, items)


MARCH_C_PLUS = MarchTest("March C+", list(MARCH_C.items) + _retention_suffix())

MARCH_C_PLUS_PLUS = _tripled_reads(MARCH_C_PLUS, "March C++")

# ---------------------------------------------------------------------------
# March A / B family.
# ---------------------------------------------------------------------------

MARCH_A = MarchTest(
    "March A",
    [
        _element(ANY, W0),
        _element(UP, R0, W1, W0, W1),
        _element(UP, R1, W0, W1),
        _element(DOWN, R1, W0, W1, W0),
        _element(DOWN, R0, W1, W0),
    ],
)

#: March A leaves every cell at 0 (its last operation is w0), so the same
#: retention tail as March C+ applies.
MARCH_A_PLUS = MarchTest("March A+", list(MARCH_A.items) + _retention_suffix())

MARCH_A_PLUS_PLUS = _tripled_reads(MARCH_A_PLUS, "March A++")

MARCH_B = MarchTest(
    "March B",
    [
        _element(ANY, W0),
        _element(UP, R0, W1, R1, W0, R0, W1),
        _element(UP, R1, W0, W1),
        _element(DOWN, R1, W0, W1, W0),
        _element(DOWN, R0, W1, W0),
    ],
)

#: March G (van de Goor): March B extended with retention pauses and
#: read-verify elements — 23N plus two delays.  Its 6-operation first
#: element puts it outside the SM0–SM7 library (microcode-only), like
#: March B itself.
MARCH_G = MarchTest(
    "March G",
    list(MARCH_B.items)
    + [
        Pause(RETENTION_PAUSE),
        _element(ANY, R0, W1, R1),
        Pause(RETENTION_PAUSE),
        _element(ANY, R1, W0, R0),
    ],
)

#: PMOVI (De Jonge & Smeulders): 13N, a March C-class algorithm whose
#: read-after-write element structure also verifies write recovery.
PMOVI = MarchTest(
    "PMOVI",
    [
        _element(DOWN, W0),
        _element(UP, R0, W1, R1),
        _element(UP, R1, W0, R0),
        _element(DOWN, R0, W1, R1),
        _element(DOWN, R1, W0, R0),
    ],
)

#: March LR (van de Goor & Gaydadjiev 1996): 14N, detects realistic
#: linked faults that March C misses.
MARCH_LR = MarchTest(
    "March LR",
    [
        _element(ANY, W0),
        _element(DOWN, R0, W1),
        _element(UP, R1, W0, R0, W1),
        _element(UP, R1, W0),
        _element(UP, R0, W1, R1, W0),
        _element(ANY, R0),
    ],
)

# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------

#: All library algorithms keyed by canonical name.
ALGORITHMS: Dict[str, MarchTest] = {
    test.name: test
    for test in (
        ZERO_ONE,
        MATS,
        MATS_PLUS,
        MATS_PLUS_PLUS,
        MARCH_X,
        MARCH_Y,
        MARCH_C,
        MARCH_C_ORIG,
        MARCH_C_PLUS,
        MARCH_C_PLUS_PLUS,
        MARCH_A,
        MARCH_A_PLUS,
        MARCH_A_PLUS_PLUS,
        MARCH_B,
        MARCH_G,
        PMOVI,
        MARCH_LR,
    )
}

#: The six fixed algorithms realised by the paper's non-programmable
#: baseline controllers, in Table 1/2 row order.
PAPER_BASELINES: Tuple[MarchTest, ...] = (
    MARCH_C,
    MARCH_C_PLUS,
    MARCH_C_PLUS_PLUS,
    MARCH_A,
    MARCH_A_PLUS,
    MARCH_A_PLUS_PLUS,
)


def get(name: str) -> MarchTest:
    """Look up a library algorithm by name.

    Raises:
        KeyError: listing the available names, if ``name`` is unknown.
    """
    try:
        return ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise KeyError(f"unknown march test {name!r}; known: {known}") from None
