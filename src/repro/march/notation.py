"""Parser and printer for the textual march-test notation.

The accepted grammar is the ASCII transliteration of van de Goor's
notation used throughout the DFT literature::

    test     := item (';' item)*
    item     := element | pause
    element  := order '(' op (',' op)* ')'
    order    := '^' | 'v' | '~'        (up, down, either)
    op       := ('r' | 'w') ('0' | '1')
    pause    := 'Del' [ '(' int ')' ]

Whitespace is insignificant.  Example — March C-::

    ~(w0); ^(r0,w1); ^(r1,w0); v(r0,w1); v(r1,w0); ~(r0)

The printer (:func:`format_test`) emits exactly this form, and
``parse_test(format_test(t))`` reproduces ``t`` (round-trip property
covered by the test suite).
"""

from __future__ import annotations

import re
from typing import List

from repro.march.element import AddressOrder, MarchElement, OpKind, Operation, Pause
from repro.march.test import MarchItem, MarchTest

_ORDER_BY_SYMBOL = {
    "^": AddressOrder.UP,
    "v": AddressOrder.DOWN,
    "~": AddressOrder.ANY,
    # Unicode arrows accepted on input for convenience when pasting from papers.
    "⇑": AddressOrder.UP,
    "⇓": AddressOrder.DOWN,
    "⇕": AddressOrder.ANY,
}

_ELEMENT_RE = re.compile(r"([\^v~⇑⇓⇕])\(([^)]*)\)$")
_PAUSE_RE = re.compile(r"Del(?:\((\d+)\))?$")
_OP_RE = re.compile(r"([rw])([01])$")


class NotationError(ValueError):
    """Raised when a march-test string does not match the grammar."""


def _parse_op(token: str) -> Operation:
    match = _OP_RE.match(token)
    if not match:
        raise NotationError(f"bad march operation {token!r} (expected e.g. 'r0' or 'w1')")
    kind = OpKind.READ if match.group(1) == "r" else OpKind.WRITE
    return Operation(kind, int(match.group(2)))


def _parse_item(token: str) -> MarchItem:
    pause = _PAUSE_RE.match(token)
    if pause:
        return Pause(int(pause.group(1))) if pause.group(1) else Pause()
    element = _ELEMENT_RE.match(token)
    if not element:
        raise NotationError(f"bad march element {token!r} (expected e.g. '^(r0,w1)' or 'Del')")
    order = _ORDER_BY_SYMBOL[element.group(1)]
    body = element.group(2)
    ops = [_parse_op(part.strip()) for part in body.split(",") if part.strip()]
    if not ops:
        raise NotationError(f"march element {token!r} has no operations")
    return MarchElement(order, ops)


def parse_test(text: str, name: str = "custom") -> MarchTest:
    """Parse a march test from its textual notation.

    Args:
        text: notation string, e.g. ``"~(w0); ^(r0,w1); ~(r1)"``.
        name: name given to the resulting :class:`MarchTest`.

    Raises:
        NotationError: on any syntax error.
    """
    items: List[MarchItem] = []
    for raw in text.split(";"):
        token = "".join(raw.split())
        if not token:
            continue
        items.append(_parse_item(token))
    if not items:
        raise NotationError("empty march test string")
    return MarchTest(name, items)


def format_test(test: MarchTest) -> str:
    """Render a march test in the canonical ASCII notation."""
    return "; ".join(str(item) for item in test.items)
