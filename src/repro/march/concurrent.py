"""Concurrent dual-port march expansion: same-cycle multi-port stimuli.

The sequential golden expansion (:func:`repro.march.simulator.expand`)
repeats the whole algorithm per port — the paper's microcode ``Inc.
Port`` / FSM path B realisation.  That regime never has two ports active
in one cycle, so faults sensitised by *simultaneous* accesses (the
paper's multiport Table 2 regime; :mod:`repro.faults.concurrent`) are
structurally invisible to it.

:func:`expand_concurrent` produces the concurrent variant: a stream of
:class:`CycleOps` groups where, in every access cycle, the *base* port
runs the ordinary march operation while a *companion* port issues a
same-cycle read of the same address, expecting the pre-cycle word (the
read-first arbitration of :meth:`repro.memory.sram.Sram.cycle`).  The
base-port operations of the concurrent stream are op-for-op the
sequential golden stream — the companion reads ride along, turning every
march operation into a genuine two-port access without changing what the
algorithm itself does.

The expansion assumes the memory starts zeroed (the injector's
``reset_state`` contract): companion read expectations come from a
fault-free shadow of the cell contents, tracked from that zero-init
state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.march.backgrounds import apply_polarity, data_backgrounds
from repro.march.element import MarchElement, Pause
from repro.march.simulator import (
    Failure,
    MemoryOperation,
    RunResult,
    _addresses,
    operation_count,
)
from repro.march.test import MarchTest


@dataclass(frozen=True)
class CycleOps:
    """One memory cycle: a group of per-port operations applied atomically.

    Operations are stored in ascending port order (the commit order of
    :meth:`repro.memory.sram.Sram.cycle`).  Validated on construction:
    non-empty, at most one operation per port, and a pause (delay op)
    only travels alone.
    """

    ops: Tuple[MemoryOperation, ...]

    def __init__(self, ops: Iterable[MemoryOperation]) -> None:
        group = tuple(sorted(ops, key=lambda op: op.port))
        if not group:
            raise ValueError("a cycle needs at least one operation")
        ports = [op.port for op in group]
        if len(set(ports)) != len(ports):
            raise ValueError(
                f"duplicate port in cycle group {group!r}: a port issues "
                f"at most one access per cycle"
            )
        if any(op.is_delay for op in group) and len(group) > 1:
            raise ValueError("a pause cannot share a cycle with port accesses")
        object.__setattr__(self, "ops", group)

    @property
    def is_delay(self) -> bool:
        return self.ops[0].is_delay

    @property
    def ports(self) -> Tuple[int, ...]:
        return tuple(op.port for op in self.ops)

    def __iter__(self):
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __str__(self) -> str:
        return " | ".join(str(op) for op in self.ops)


def expand_concurrent(
    test: MarchTest,
    n_words: int,
    width: int = 1,
    ports: int = 1,
    backgrounds: Optional[Sequence[int]] = None,
) -> Iterator[CycleOps]:
    """Yield the concurrent golden cycle stream of ``test``.

    Loop nesting mirrors :func:`~repro.march.simulator.expand` — base
    port (rotation) outermost, then data backgrounds, march items and
    the address sweep — so the base-port operation of cycle *i* is
    exactly operation *i* of the sequential stream.  In every access
    cycle the companion port ``(base + 1) % ports`` additionally reads
    the same address, expecting the pre-cycle word from a fault-free
    shadow (zero-initialised memory).  Pauses stay single-op cycles.

    With ``ports == 1`` there is no companion: every cycle holds exactly
    the sequential operation, so the concurrent stream degenerates
    op-for-op to :func:`~repro.march.simulator.expand`.
    """
    if n_words <= 0:
        raise ValueError(f"memory needs at least one word, got {n_words}")
    if ports <= 0:
        raise ValueError(f"memory needs at least one port, got {ports}")
    patterns = list(
        data_backgrounds(width) if backgrounds is None else backgrounds
    )
    state: List[int] = [0] * n_words
    for base in range(ports):
        companion = (base + 1) % ports
        for background in patterns:
            for item in test.items:
                if isinstance(item, Pause):
                    yield CycleOps(
                        (
                            MemoryOperation(
                                port=base,
                                address=0,
                                is_write=False,
                                delay=item.duration,
                            ),
                        )
                    )
                    continue
                yield from _expand_element_concurrent(
                    item, n_words, width, base, companion, background, state
                )


def _expand_element_concurrent(
    element: MarchElement,
    n_words: int,
    width: int,
    base: int,
    companion: int,
    background: int,
    state: List[int],
) -> Iterator[CycleOps]:
    for address in _addresses(element.order, n_words):
        for op in element.ops:
            word = apply_polarity(background, op.polarity, width)
            pre_cycle = state[address]
            if op.is_write:
                base_op = MemoryOperation(base, address, True, value=word)
                state[address] = word
            else:
                base_op = MemoryOperation(
                    base, address, False, expected=word
                )
            group = [base_op]
            if companion != base:
                # Read-first arbitration: the companion observes the
                # pre-cycle word even when the base op writes this cycle.
                group.append(
                    MemoryOperation(
                        companion, address, False, expected=pre_cycle
                    )
                )
            yield CycleOps(group)


def cycle_count(
    test: MarchTest,
    n_words: int,
    width: int = 1,
    ports: int = 1,
) -> int:
    """Length of the concurrent cycle stream, computed analytically.

    One cycle per sequential operation — the companion reads share
    cycles instead of adding them — so this equals
    :func:`~repro.march.simulator.operation_count`.
    """
    return operation_count(test, n_words, width, ports)


def run_cycles_on_memory(
    cycles: Iterable[CycleOps],
    memory,
    stop_at_first_failure: bool = False,
) -> RunResult:
    """Apply a concurrent cycle stream to a memory model.

    The ``memory`` must provide ``cycle(ops) -> {port: observed}`` — the
    interface of :class:`repro.memory.sram.Sram`.  Failures carry the
    *cycle* index as ``op_index``; several reads of one cycle can fail,
    yielding one failure per mismatching port in ascending port order.
    """
    failures: List[Failure] = []
    count = 0
    for index, cycle in enumerate(cycles):
        count += 1
        observed_by_port = memory.cycle(cycle.ops)
        stop = False
        for op in cycle.ops:
            if not op.is_read:
                continue
            observed = observed_by_port[op.port]
            if observed != op.expected:
                failures.append(
                    Failure(index, op.port, op.address, op.expected, observed)
                )
                if stop_at_first_failure:
                    stop = True
                    break
        if stop:
            break
    return RunResult(operations=count, failures=failures)
