"""Primitive march-test building blocks.

A march test is a finite sequence of *march elements*.  Each element walks
the whole address space in a fixed order (up, down, or "either") and
applies the same short sequence of read/write operations to every cell.
Operations are written relative to the element's *test data* ``d``:
``r0`` reads expecting ``d``-polarity 0, ``w1`` writes polarity 1, etc.
For bit-oriented memories with the all-zero data background, polarity 0
literally means logic 0; for word-oriented memories polarity selects
between the current background pattern and its complement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Tuple


class AddressOrder(enum.Enum):
    """Traversal order of a march element over the address space.

    ``UP`` visits addresses 0..n-1, ``DOWN`` visits n-1..0 and ``ANY``
    means the order is irrelevant for fault coverage (the arrow ``m`` /
    "don't care" of the paper's Eq. 1).  Executors resolve ``ANY`` to
    ``UP``.
    """

    UP = "up"
    DOWN = "down"
    ANY = "any"

    @property
    def symbol(self) -> str:
        """Single-character arrow used by :mod:`repro.march.notation`."""
        return {"up": "^", "down": "v", "any": "~"}[self.value]

    def reversed(self) -> "AddressOrder":
        """Return the opposite traversal order (``ANY`` stays ``ANY``)."""
        if self is AddressOrder.UP:
            return AddressOrder.DOWN
        if self is AddressOrder.DOWN:
            return AddressOrder.UP
        return AddressOrder.ANY

    def resolve(self) -> "AddressOrder":
        """Concrete order used at execution time (``ANY`` -> ``UP``)."""
        return AddressOrder.UP if self is AddressOrder.ANY else self


class OpKind(enum.Enum):
    """Kind of a primitive march operation."""

    READ = "r"
    WRITE = "w"


@dataclass(frozen=True)
class Operation:
    """A single march operation, e.g. ``r0`` or ``w1``.

    Attributes:
        kind: read or write.
        polarity: 0 applies/expects the test data ``d``; 1 applies/expects
            its complement.  (van de Goor writes these as ``rD``/``rD̄``.)
    """

    kind: OpKind
    polarity: int

    def __post_init__(self) -> None:
        if self.polarity not in (0, 1):
            raise ValueError(f"polarity must be 0 or 1, got {self.polarity!r}")

    @property
    def is_read(self) -> bool:
        return self.kind is OpKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is OpKind.WRITE

    def inverted(self) -> "Operation":
        """The same operation with complemented data polarity."""
        return Operation(self.kind, self.polarity ^ 1)

    def __str__(self) -> str:
        return f"{self.kind.value}{self.polarity}"


def read(polarity: int) -> Operation:
    """Shorthand constructor: ``read(0)`` is ``r0``."""
    return Operation(OpKind.READ, polarity)


def write(polarity: int) -> Operation:
    """Shorthand constructor: ``write(1)`` is ``w1``."""
    return Operation(OpKind.WRITE, polarity)


R0 = read(0)
R1 = read(1)
W0 = write(0)
W1 = write(1)


@dataclass(frozen=True)
class MarchElement:
    """One march element: an address sweep applying ``ops`` to each cell.

    Attributes:
        order: traversal order over the address space.
        ops: non-empty operation sequence applied to every visited cell.
    """

    order: AddressOrder
    ops: Tuple[Operation, ...]

    def __init__(self, order: AddressOrder, ops: Iterable[Operation]) -> None:
        object.__setattr__(self, "order", order)
        object.__setattr__(self, "ops", tuple(ops))
        if not self.ops:
            raise ValueError("a march element needs at least one operation")

    @property
    def op_count(self) -> int:
        """Operations applied per memory cell."""
        return len(self.ops)

    @property
    def reads(self) -> Tuple[Operation, ...]:
        return tuple(op for op in self.ops if op.is_read)

    @property
    def writes(self) -> Tuple[Operation, ...]:
        return tuple(op for op in self.ops if op.is_write)

    def inverted(self) -> "MarchElement":
        """Element with complemented address order and data polarities.

        This is the transformation the microcode controller's *reference
        register* applies when re-running the stored microcode for the
        symmetric second half of an algorithm such as March C.
        """
        return MarchElement(self.order.reversed(), (op.inverted() for op in self.ops))

    def with_order(self, order: AddressOrder) -> "MarchElement":
        return MarchElement(order, self.ops)

    def __str__(self) -> str:
        body = ",".join(str(op) for op in self.ops)
        return f"{self.order.symbol}({body})"


@dataclass(frozen=True)
class Pause:
    """A retention pause ("Hold" in the paper's March C+/A+ definitions).

    The BIST controller idles for ``duration`` time units so that leaking
    cells lose their contents before the following verification element.

    Attributes:
        duration: idle time in arbitrary retention-time units; the memory
            model's data-retention faults corrupt cells once the
            accumulated pause exceeds the fault's decay time.
    """

    duration: int = 100

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("pause duration must be positive")

    def __str__(self) -> str:
        return f"Del({self.duration})"
