"""March test algebra: elements, tests, notation, algorithm library.

This package implements the march-test formalism of van de Goor ("Testing
Semiconductor Memories", 1991) that the paper's BIST controllers execute:

* :class:`~repro.march.element.Operation` — a single read/write of the
  test data ``d`` or its complement.
* :class:`~repro.march.element.MarchElement` — an address sweep (up, down
  or either) applying a fixed operation sequence to every cell.
* :class:`~repro.march.test.MarchTest` — a sequence of march elements and
  optional retention pauses.
* :mod:`~repro.march.notation` — parser/printer for the standard
  ``{up}(r0,w1);{down}(r1,w0)`` notation.
* :mod:`~repro.march.library` — the algorithms evaluated in the paper
  (March C, C+, C++, A, A+, A++, and classic tests for context).
* :mod:`~repro.march.simulator` — the golden operation-stream expander and
  memory executor all BIST controllers are checked against.
"""

from repro.march.element import AddressOrder, MarchElement, OpKind, Operation, Pause
from repro.march.test import MarchTest
from repro.march.notation import format_test, parse_test
from repro.march import library
from repro.march.simulator import MemoryOperation, expand, run_on_memory
from repro.march.concurrent import (
    CycleOps,
    cycle_count,
    expand_concurrent,
    run_cycles_on_memory,
)
from repro.march.properties import is_symmetric, symmetric_split
from repro.march.validate import check_consistency, is_consistent
from repro.march.backgrounds import data_backgrounds

__all__ = [
    "AddressOrder",
    "CycleOps",
    "MarchElement",
    "MarchTest",
    "MemoryOperation",
    "OpKind",
    "Operation",
    "Pause",
    "data_backgrounds",
    "check_consistency",
    "cycle_count",
    "expand",
    "expand_concurrent",
    "format_test",
    "is_consistent",
    "is_symmetric",
    "library",
    "parse_test",
    "run_cycles_on_memory",
    "run_on_memory",
    "symmetric_split",
]
