"""Golden march-test execution engine.

This is the reference semantics every BIST controller in
:mod:`repro.core` is verified against: :func:`expand` turns a march test
plus a memory geometry into the exact stream of memory operations a
correct controller must issue, and :func:`run_on_memory` applies such a
stream to a (possibly faulty) memory model and collects failures.

Loop nesting matches both of the paper's programmable architectures:
ports outermost (microcode instruction 9 / FSM "path B"), data
backgrounds next (instruction 8 / "path A"), then the march elements and
the address sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.march.backgrounds import apply_polarity, data_backgrounds
from repro.march.element import AddressOrder, MarchElement, Pause
from repro.march.test import MarchTest


@dataclass(frozen=True)
class MemoryOperation:
    """One memory access (or idle pause) issued by a BIST controller.

    Attributes:
        port: port index the access is issued on.
        address: word address (ignored for ``DELAY``; kept at 0).
        is_write: True for writes; False for reads and delays.
        value: word written (writes only, else 0).
        expected: word a read must observe, or ``None`` for writes/delays.
        delay: idle time units (retention pauses only, else 0).
    """

    port: int
    address: int
    is_write: bool
    value: int = 0
    expected: Optional[int] = None
    delay: int = 0

    @property
    def is_read(self) -> bool:
        return not self.is_write and self.delay == 0

    @property
    def is_delay(self) -> bool:
        return self.delay > 0

    def __str__(self) -> str:
        if self.is_delay:
            return f"p{self.port} delay({self.delay})"
        if self.is_write:
            return f"p{self.port} w@{self.address}={self.value:x}"
        return f"p{self.port} r@{self.address}?{self.expected:x}"


def _addresses(order: AddressOrder, n_words: int) -> Iterable[int]:
    if order.resolve() is AddressOrder.UP:
        return range(n_words)
    return range(n_words - 1, -1, -1)


def expand(
    test: MarchTest,
    n_words: int,
    width: int = 1,
    ports: int = 1,
    backgrounds: Optional[Sequence[int]] = None,
) -> Iterator[MemoryOperation]:
    """Yield the golden operation stream of ``test`` for a memory geometry.

    Args:
        test: the march algorithm.
        n_words: number of addressable words.
        width: word width in bits (1 = bit-oriented).
        ports: number of read/write ports; the full test repeats per port.
        backgrounds: data background set; defaults to the standard
            ``log2(width)+1`` patterns of
            :func:`repro.march.backgrounds.data_backgrounds`.

    Yields:
        :class:`MemoryOperation` in exact controller order.
    """
    if n_words <= 0:
        raise ValueError(f"memory needs at least one word, got {n_words}")
    if ports <= 0:
        raise ValueError(f"memory needs at least one port, got {ports}")
    patterns = list(data_backgrounds(width) if backgrounds is None else backgrounds)
    for port in range(ports):
        for background in patterns:
            for item in test.items:
                if isinstance(item, Pause):
                    yield MemoryOperation(
                        port=port, address=0, is_write=False, delay=item.duration
                    )
                    continue
                yield from _expand_element(item, n_words, width, port, background)


def _expand_element(
    element: MarchElement,
    n_words: int,
    width: int,
    port: int,
    background: int,
) -> Iterator[MemoryOperation]:
    for address in _addresses(element.order, n_words):
        for op in element.ops:
            word = apply_polarity(background, op.polarity, width)
            if op.is_write:
                yield MemoryOperation(port, address, True, value=word)
            else:
                yield MemoryOperation(port, address, False, expected=word)


def operation_count(
    test: MarchTest,
    n_words: int,
    width: int = 1,
    ports: int = 1,
) -> int:
    """Length of the golden stream, computed analytically.

    Equals ``len(list(expand(...)))`` without materialising the stream —
    used for test-time accounting over large memories.
    """
    backgrounds = len(data_backgrounds(width))
    per_pass = test.operation_count * n_words + len(test.pauses)
    return ports * backgrounds * per_pass


@dataclass(frozen=True)
class Failure:
    """A read mismatch observed while executing an operation stream.

    Attributes:
        op_index: position of the failing read in the stream.
        port: port the read was issued on.
        address: failing word address.
        expected: word the read should have returned.
        observed: word actually returned by the memory.
    """

    op_index: int
    port: int
    address: int
    expected: int
    observed: int

    @property
    def failing_bits(self) -> int:
        """Bit mask of mismatching bit positions."""
        return self.expected ^ self.observed


@dataclass
class RunResult:
    """Outcome of applying an operation stream to a memory model."""

    operations: int
    failures: List[Failure]

    @property
    def passed(self) -> bool:
        return not self.failures

    @property
    def failure_count(self) -> int:
        return len(self.failures)


def run_on_memory(
    operations: Iterable[MemoryOperation],
    memory,
    stop_at_first_failure: bool = False,
) -> RunResult:
    """Apply an operation stream to a memory model and record mismatches.

    The ``memory`` object must provide ``read(port, address) -> int``,
    ``write(port, address, value)`` and ``elapse(duration)`` — the
    interface of :class:`repro.memory.sram.Sram`.

    Args:
        operations: stream from :func:`expand` or a BIST controller.
        memory: memory model under test.
        stop_at_first_failure: stop early, as a go/no-go BIST run would.
    """
    failures: List[Failure] = []
    count = 0
    for index, op in enumerate(operations):
        count += 1
        if op.is_delay:
            memory.elapse(op.delay)
        elif op.is_write:
            memory.write(op.port, op.address, op.value)
        else:
            observed = memory.read(op.port, op.address)
            if observed != op.expected:
                failures.append(
                    Failure(index, op.port, op.address, op.expected, observed)
                )
                if stop_at_first_failure:
                    break
    return RunResult(operations=count, failures=failures)
