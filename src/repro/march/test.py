"""The :class:`MarchTest` container and its derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple, Union

from repro.march.element import MarchElement, Operation, Pause

MarchItem = Union[MarchElement, Pause]


@dataclass(frozen=True)
class MarchTest:
    """A complete march test algorithm.

    A march test is an ordered sequence of :class:`MarchElement` sweeps,
    optionally interleaved with :class:`Pause` items for data-retention
    detection (the paper's ``Hold`` steps in March C+ / March A+).

    Attributes:
        name: human-readable algorithm name, e.g. ``"March C"``.
        items: the element/pause sequence.
    """

    name: str
    items: Tuple[MarchItem, ...] = field(default_factory=tuple)

    def __init__(self, name: str, items: Iterable[MarchItem]) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "items", tuple(items))
        if not self.items:
            raise ValueError("a march test needs at least one element")
        for item in self.items:
            if not isinstance(item, (MarchElement, Pause)):
                raise TypeError(f"march test items must be MarchElement or Pause, got {item!r}")

    @property
    def elements(self) -> Tuple[MarchElement, ...]:
        """The march elements, with pauses filtered out."""
        return tuple(item for item in self.items if isinstance(item, MarchElement))

    @property
    def pauses(self) -> Tuple[Pause, ...]:
        return tuple(item for item in self.items if isinstance(item, Pause))

    @property
    def element_count(self) -> int:
        return len(self.elements)

    @property
    def operation_count(self) -> int:
        """Total operations applied per memory cell (the ``k`` of ``kN``)."""
        return sum(element.op_count for element in self.elements)

    @property
    def complexity(self) -> str:
        """Canonical complexity string, e.g. ``"10N"`` for March C."""
        return f"{self.operation_count}N"

    @property
    def has_pauses(self) -> bool:
        return bool(self.pauses)

    def operations(self) -> List[Operation]:
        """All operations in test order, flattened across elements."""
        ops: List[Operation] = []
        for element in self.elements:
            ops.extend(element.ops)
        return ops

    def renamed(self, name: str) -> "MarchTest":
        return MarchTest(name, self.items)

    def concatenated(self, other: "MarchTest", name: str = "") -> "MarchTest":
        """A new test running ``self`` followed by ``other``."""
        return MarchTest(name or f"{self.name}+{other.name}", self.items + other.items)

    def __str__(self) -> str:
        return "; ".join(str(item) for item in self.items)

    def __len__(self) -> int:
        return len(self.items)
