"""Data background patterns for word-oriented memory testing.

A march test written for bit-oriented memories is extended to a W-bit
word-oriented memory by repeating it once per *data background*: ``w0``
writes the background pattern, ``w1`` its complement, and reads compare
against the corresponding pattern.  The standard background set (van de
Goor) has ``log2(W) + 1`` members — the solid pattern plus one
checkerboard per address-bit-within-word granularity — which detects all
intra-word coupling faults between adjacent bit pairs at every power-of-
two distance.

Both programmable controllers in the paper iterate backgrounds in their
outer loop (the microcode controller's instruction 8, the FSM
controller's "path A" loop-back), so this module is shared by the golden
simulator and all controller models.
"""

from __future__ import annotations

from typing import List


def data_backgrounds(width: int) -> List[int]:
    """Standard background set for a ``width``-bit word.

    Returns ``log2(width) + 1`` patterns: all-zero, then checkerboards of
    block size 1, 2, 4, ... width/2.  For ``width == 1`` (bit-oriented
    memories) this is just ``[0]`` — the test runs once, exactly as the
    bit-oriented notation reads.

    Example for ``width == 8``::

        [0b00000000, 0b01010101, 0b00110011, 0b00001111]

    Raises:
        ValueError: if ``width`` is not a positive power of two.
    """
    if width <= 0 or width & (width - 1):
        raise ValueError(f"word width must be a positive power of two, got {width}")
    patterns = [0]
    block = 1
    while block < width:
        pattern = 0
        for bit in range(width):
            if (bit // block) & 1:
                pattern |= 1 << bit
        patterns.append(pattern)
        block *= 2
    return patterns


def background_count(width: int) -> int:
    """Number of backgrounds for a ``width``-bit word (``log2(W) + 1``)."""
    return len(data_backgrounds(width))


def apply_polarity(background: int, polarity: int, width: int) -> int:
    """Word value for a march operation of ``polarity`` under ``background``.

    Polarity 0 yields the background itself, polarity 1 its bitwise
    complement within ``width`` bits.
    """
    if polarity not in (0, 1):
        raise ValueError(f"polarity must be 0 or 1, got {polarity!r}")
    mask = (1 << width) - 1
    return background & mask if polarity == 0 else (~background) & mask
