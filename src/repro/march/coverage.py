"""Fault-coverage evaluation of march tests and BIST controllers.

Coverage of a test over a fault universe is measured by single-fault
simulation: for each fault, inject it into a pristine memory, run the
test's operation stream, and mark the fault detected if any read
mismatches.  The same machinery accepts operation streams produced by
the BIST controllers of :mod:`repro.core`, which is how the library
demonstrates that controller-generated and golden streams have identical
coverage.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.faults.base import CellFault
from repro.faults.injector import FaultInjector
from repro.faults.universe import FaultUniverse
from repro.march.simulator import MemoryOperation, expand, run_on_memory
from repro.march.test import MarchTest
from repro.memory.sram import Sram

StreamFactory = Callable[[], Iterable[MemoryOperation]]


@dataclass
class CoverageReport:
    """Per-kind and overall detection statistics for one test run."""

    test_name: str
    universe_name: str
    detected: Dict[str, int] = field(default_factory=dict)
    total: Dict[str, int] = field(default_factory=dict)
    escapes: List[CellFault] = field(default_factory=list)

    @property
    def detected_count(self) -> int:
        return sum(self.detected.values())

    @property
    def total_count(self) -> int:
        return sum(self.total.values())

    @property
    def is_vacuous(self) -> bool:
        """True when the swept universe contained no faults at all —
        every ratio is then 0/0 and carries no information."""
        return not self.total_count

    @property
    def overall(self) -> float:
        """Overall coverage fraction in [0, 1].

        A 0/0 sweep (empty universe) reports 0.0, *not* 1.0: an empty
        sweep detects nothing and must never read as full coverage.
        Check :attr:`is_vacuous` to distinguish 0/0 from a genuine
        all-escaped 0/N.
        """
        if not self.total_count:
            return 0.0
        return self.detected_count / self.total_count

    def coverage_of(self, kind: str) -> float:
        """Coverage fraction for one fault kind; 0.0 when the universe
        held no fault of that kind (0/0 — see :attr:`is_vacuous`)."""
        total = self.total.get(kind, 0)
        if not total:
            return 0.0
        return self.detected.get(kind, 0) / total

    def as_rows(self) -> List[tuple]:
        """(kind, detected, total, percent) rows, sorted by kind.

        Warns on a vacuous report so table renderers can't silently
        show an empty sweep as a clean one.
        """
        if self.is_vacuous:
            warnings.warn(
                f"coverage report for {self.test_name!r} over "
                f"{self.universe_name!r} is vacuous: 0 faults swept "
                "(0/0 reported as 0%)",
                stacklevel=2,
            )
        rows = []
        for kind in sorted(self.total):
            rows.append(
                (
                    kind,
                    self.detected.get(kind, 0),
                    self.total[kind],
                    100.0 * self.coverage_of(kind),
                )
            )
        return rows

    def escape_specs(self) -> List[str]:
        """The escaped faults as portable strings.

        Spec-expressible faults serialise through
        :func:`repro.faults.spec.format_fault` (re-parseable); the rest
        fall back to a tagged repr ``unspec:<kind>:<description>`` so
        JSON reports never drop an escape silently.
        """
        from repro.faults.spec import format_fault

        specs = []
        for fault in self.escapes:
            spec = format_fault(fault)
            if spec is None:
                spec = f"unspec:{fault.kind}:{fault.describe()}"
            specs.append(spec)
        return specs

    def to_json(self) -> Dict[str, Any]:
        return {
            "test": self.test_name,
            "universe": self.universe_name,
            "detected": self.detected_count,
            "total": self.total_count,
            "vacuous": self.is_vacuous,
            "overall_percent": round(100.0 * self.overall, 2),
            "by_kind": {
                kind: {
                    "detected": self.detected.get(kind, 0),
                    "total": self.total[kind],
                }
                for kind in sorted(self.total)
            },
            "escapes": self.escape_specs(),
        }

    def __str__(self) -> str:
        lines = [
            f"coverage of {self.test_name} over {self.universe_name}: "
            f"{100.0 * self.overall:.1f}% "
            f"({self.detected_count}/{self.total_count})"
            + (" [vacuous: 0 faults swept]" if self.is_vacuous else "")
        ]
        for kind, detected, total, percent in self.as_rows():
            lines.append(f"  {kind:6s} {detected:5d}/{total:<5d} {percent:6.1f}%")
        return "\n".join(lines)


def evaluate_stream_coverage(
    make_stream: StreamFactory,
    memory: Sram,
    universe: FaultUniverse,
    test_name: str = "stream",
) -> CoverageReport:
    """Measure coverage of an arbitrary operation-stream generator.

    Args:
        make_stream: zero-argument callable producing a fresh operation
            stream per fault (streams are consumed once per injection).
        memory: the memory-under-test instance to reuse across faults.
        universe: fault population to sweep.
        test_name: label for the report.
    """
    injector = FaultInjector(memory)
    report = CoverageReport(test_name=test_name, universe_name=universe.name)
    for fault in universe:
        report.total[fault.kind] = report.total.get(fault.kind, 0) + 1
        with injector.injected(fault) as faulty:
            result = run_on_memory(make_stream(), faulty, stop_at_first_failure=True)
        if result.failures:
            report.detected[fault.kind] = report.detected.get(fault.kind, 0) + 1
        else:
            report.escapes.append(fault)
    return report


def evaluate_coverage(
    test: MarchTest,
    universe: FaultUniverse,
    n_words: int,
    width: int = 1,
    ports: int = 1,
) -> CoverageReport:
    """Measure the golden-stream coverage of a march test."""
    memory = Sram(n_words, width=width, ports=ports)

    def make_stream() -> Iterable[MemoryOperation]:
        return expand(test, n_words, width=width, ports=ports)

    return evaluate_stream_coverage(
        make_stream, memory, universe, test_name=test.name
    )
