"""Fault-coverage evaluation of march tests and BIST controllers.

Coverage of a test over a fault universe is measured by single-fault
simulation: for each fault, inject it into a pristine memory, run the
test's operation stream, and mark the fault detected if any read
mismatches.  The same machinery accepts operation streams produced by
the BIST controllers of :mod:`repro.core`, which is how the library
demonstrates that controller-generated and golden streams have identical
coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.faults.base import CellFault
from repro.faults.injector import FaultInjector
from repro.faults.universe import FaultUniverse
from repro.march.simulator import MemoryOperation, expand, run_on_memory
from repro.march.test import MarchTest
from repro.memory.sram import Sram

StreamFactory = Callable[[], Iterable[MemoryOperation]]


@dataclass
class CoverageReport:
    """Per-kind and overall detection statistics for one test run."""

    test_name: str
    universe_name: str
    detected: Dict[str, int] = field(default_factory=dict)
    total: Dict[str, int] = field(default_factory=dict)
    escapes: List[CellFault] = field(default_factory=list)

    @property
    def detected_count(self) -> int:
        return sum(self.detected.values())

    @property
    def total_count(self) -> int:
        return sum(self.total.values())

    @property
    def overall(self) -> float:
        """Overall coverage fraction in [0, 1]."""
        if not self.total_count:
            return 1.0
        return self.detected_count / self.total_count

    def coverage_of(self, kind: str) -> float:
        total = self.total.get(kind, 0)
        if not total:
            return 1.0
        return self.detected.get(kind, 0) / total

    def as_rows(self) -> List[tuple]:
        """(kind, detected, total, percent) rows, sorted by kind."""
        rows = []
        for kind in sorted(self.total):
            rows.append(
                (
                    kind,
                    self.detected.get(kind, 0),
                    self.total[kind],
                    100.0 * self.coverage_of(kind),
                )
            )
        return rows

    def __str__(self) -> str:
        lines = [
            f"coverage of {self.test_name} over {self.universe_name}: "
            f"{100.0 * self.overall:.1f}% "
            f"({self.detected_count}/{self.total_count})"
        ]
        for kind, detected, total, percent in self.as_rows():
            lines.append(f"  {kind:6s} {detected:5d}/{total:<5d} {percent:6.1f}%")
        return "\n".join(lines)


def evaluate_stream_coverage(
    make_stream: StreamFactory,
    memory: Sram,
    universe: FaultUniverse,
    test_name: str = "stream",
) -> CoverageReport:
    """Measure coverage of an arbitrary operation-stream generator.

    Args:
        make_stream: zero-argument callable producing a fresh operation
            stream per fault (streams are consumed once per injection).
        memory: the memory-under-test instance to reuse across faults.
        universe: fault population to sweep.
        test_name: label for the report.
    """
    injector = FaultInjector(memory)
    report = CoverageReport(test_name=test_name, universe_name=universe.name)
    for fault in universe:
        report.total[fault.kind] = report.total.get(fault.kind, 0) + 1
        with injector.injected(fault) as faulty:
            result = run_on_memory(make_stream(), faulty, stop_at_first_failure=True)
        if result.failures:
            report.detected[fault.kind] = report.detected.get(fault.kind, 0) + 1
        else:
            report.escapes.append(fault)
    return report


def evaluate_coverage(
    test: MarchTest,
    universe: FaultUniverse,
    n_words: int,
    width: int = 1,
    ports: int = 1,
) -> CoverageReport:
    """Measure the golden-stream coverage of a march test."""
    memory = Sram(n_words, width=width, ports=ports)

    def make_stream() -> Iterable[MemoryOperation]:
        return expand(test, n_words, width=width, ports=ports)

    return evaluate_stream_coverage(
        make_stream, memory, universe, test_name=test.name
    )
