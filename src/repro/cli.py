"""Command-line interface for the BIST library.

Entry point: ``python -m repro <command>``.

Commands:

``run``
    Build a BIST unit (architecture + algorithm + memory geometry),
    optionally inject faults, run the self-test and print the verdict —
    with ``--diagnose`` the full diagnostic flow (fail log, bitmap,
    classification) follows a failure.
``assemble``
    Print an algorithm's microcode or SM program (or the tester
    interchange file) without running anything.
``algorithms``
    List the library algorithms with complexity and notation.
``recommend``
    Pick the cheapest library algorithm covering a set of fault
    classes (measured coverage, not citation).
``report``
    Render a markdown datasheet for a configuration (geometry,
    program listing, measured coverage, area breakdown).
``lint``
    Statically verify algorithms/programs without running them: CFG +
    abstract-interpretation termination proof + the rule catalogue of
    ``docs/ANALYSIS.md``.  Exits 1 when any error-severity finding is
    reported, so it can gate a program load in CI or on a tester.
    ``--target progfsm`` compiles and verifies the upper-buffer program
    (``PF`` rules); ``--target coverage`` statically proves per-fault
    coverage and reports escapes (``CV`` rules); ``--fix`` applies the
    mechanical microcode fixes to an interchange file in place.
``certify``
    Run the static fault-coverage prover: one verdict (covered /
    not-covered / unknown) per fault of the standard universe, each
    covered verdict carrying a failing-read witness op index.
    ``--cross-check`` validates every verdict fault-for-fault against a
    simulated sweep and exits 1 on any disagreement (the CI gate).
``fuzz``
    Run the verifier-vs-simulator fuzz harness: random well-formed
    march algorithms over random geometries, each checked for exact
    agreement between the static analyses and the cycle-accurate
    controllers of both programmable architectures, plus op-for-op
    behavioural equivalence of all three architectures against the
    golden march expansion (``--no-conformance`` to skip) and response
    equivalence on a randomly faulted memory (``--no-faults`` to skip),
    cross-checked against the numpy batch sweep engine (``--no-vector``
    to skip), plus an in-field transparent-session identity
    (``--no-infield`` to skip).
    Exits 1 on any mismatch, so CI can gate on it; ``--report FILE``
    writes the JSON artifact (failing samples carry minimised
    reproducers).
``sweep``
    Service-backed fault-response sweep on the crash-tolerant job
    engine (``docs/SERVICE.md``): per-shard timeouts, bounded retry,
    crash quarantine, and — with ``--store DIR`` — content-hashed
    shard checkpoints so an interrupted sweep resumes (``--resume``)
    and an identical rerun is pure cache hits.  SIGINT writes the
    partial report (marked ``"interrupted": true``) and exits 130.
``serve``
    File-backed sweep sessions in the BIST controller handshake idiom:
    ``submit`` configures (prints the content-addressed session id),
    ``run`` starts or resumes, ``status`` polls, ``collect`` returns
    the report.
``conformance``
    Differential conformance tooling: ``run`` checks one algorithm (or
    ``--all``) op-for-op across the architectures with a structured
    first-divergence report; ``run-faulty`` runs every architecture's
    BIST session against the *same injected fault* and compares fail
    events, fail-log aggregations and diagnosis (``--fault SPEC``, or a
    stratified/``--full-universe`` sweep of the standard fault
    universe; ``--jobs N`` shards the sweep over worker processes with
    a jobs-independent report, repeatable ``--geometry WxBxP`` flags
    sweep several memory geometries into one sectioned report, and
    ``--mode concurrent|infield`` switches the stimulus regime to the
    same-cycle dual-port expansion or a deterministic in-field
    transparent session);
    ``shrink`` delta-debugs a failing sample (``--sample
    SEED:INDEX`` from a fuzz report, or ``--notation``) to a minimal
    reproducer — with ``--fault SPEC`` the shrink runs over all three
    axes (march, geometry, fault); ``record`` (re)writes the
    golden-trace corpus under ``tests/corpus/`` (``--streams`` for the
    classical/transparent stream corpus) or promotes fuzz-report
    mismatches into ``tests/corpus/regressions/`` (``--from-report``);
    ``corpus-check`` validates every checked-in trace (used by CI).

Fault specifications for ``run --fault`` use small colon-separated
forms, e.g. ``saf:word:bit:value``::

    saf:3:0:1        stuck-at-1 at cell (3,0)
    tf:4:0:up        up-transition fault at cell (4,0)
    drf:5:0:1        data-retention fault losing 1 at cell (5,0)
    sof:6:0:1        stuck-open (weak 1) at cell (6,0)
    cfin:0:0:1:0:up  inversion coupling, aggressor (0,0) -> victim (1,0)
    af1:3            address 3 selects no cell
    af3:2:6          addresses 2 and 6 share one cell
    paf:1:3:0        cell (3,0) disconnected from port 1
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.controller import ControllerCapabilities
from repro.core.bist_unit import MemoryBistUnit
from repro.core.hardwired import HardwiredBistController
from repro.core.microcode import MicrocodeBistController, assemble as assemble_microcode
from repro.core.microcode.disassembler import disassemble
from repro.core.programming import dump_program
from repro.core.progfsm import ProgrammableFsmBistController, compile_to_sm
from repro.faults.spec import FaultSpecError, parse_fault
from repro.march import library
from repro.march.notation import format_test
from repro.memory import Sram

ARCHITECTURES = {
    "microcode": MicrocodeBistController,
    "progfsm": ProgrammableFsmBistController,
    "hardwired": HardwiredBistController,
}


def _add_geometry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--words", type=int, default=64, help="memory depth")
    parser.add_argument("--width", type=int, default=1, help="word width")
    parser.add_argument("--ports", type=int, default=1, help="port count")
    parser.add_argument(
        "--algorithm", default="March C",
        help='library algorithm name (see "algorithms")',
    )


def _cmd_run(args: argparse.Namespace) -> int:
    test = library.get(args.algorithm)
    caps = ControllerCapabilities(
        n_words=args.words, width=args.width, ports=args.ports
    )
    controller = ARCHITECTURES[args.architecture](test, caps)
    memory = Sram(args.words, width=args.width, ports=args.ports)
    for spec in args.fault or []:
        memory.attach(parse_fault(spec))
    unit = MemoryBistUnit(controller, memory)
    result = unit.run(stop_at_first_failure=not args.diagnose)
    print(result)
    if args.area:
        from repro.area.report import format_breakdown

        print()
        print(format_breakdown(unit.area()))
    if args.diagnose and not result.passed:
        from repro.diagnostics import FailBitmap, FailLog, classify

        log = FailLog.from_result(result)
        print()
        print(log)
        bitmap = FailBitmap.from_log(log, args.words, args.width)
        print(f"\nfail bitmap ({bitmap.fail_count} cells):")
        print(bitmap.render())
        print("\nclassification:")
        for diagnosis in classify(log, test, args.words, args.width,
                                  args.ports):
            print(f"  ({diagnosis.address},{diagnosis.bit}): "
                  f"{diagnosis.label} — {diagnosis.rationale}")
    return 0 if result.passed else 1


def _cmd_assemble(args: argparse.Namespace) -> int:
    test = library.get(args.algorithm)
    caps = ControllerCapabilities(
        n_words=args.words, width=args.width, ports=args.ports
    )
    if args.format == "microcode":
        print(disassemble(assemble_microcode(test, caps)))
    elif args.format == "fsm":
        program = compile_to_sm(test, caps)
        for index, instruction in enumerate(program.instructions):
            print(f"{index:3d}: {instruction}  [{instruction.encode():#04x}]")
    else:  # interchange
        print(dump_program(assemble_microcode(test, caps)), end="")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    from repro.eval.recommend import recommend

    classes = [token.strip().upper() for token in args.classes.split(",")
               if token.strip()]
    # Column names are case-sensitive mixed case (CFin etc.): normalise.
    from repro.eval.coverage_study import COVERAGE_COLUMNS

    canonical = {column.upper(): column for column in COVERAGE_COLUMNS}
    resolved = [canonical.get(token, token) for token in classes]
    choice = recommend(resolved, n_words=args.words)
    print(choice)
    print(f"notation: {format_test(choice.test)}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.reporting import build_controller, datasheet

    test = library.get(args.algorithm)
    caps = ControllerCapabilities(
        n_words=args.words, width=args.width, ports=args.ports
    )
    controller = build_controller(args.architecture, test, caps)
    text = datasheet(controller)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_algorithms(_args: argparse.Namespace) -> int:
    width = max(len(name) for name in library.ALGORITHMS)
    for name, test in library.ALGORITHMS.items():
        print(f"{name:<{width}}  {test.complexity:>5}  {format_test(test)}")
    return 0


def _lint_one(name: str, args: argparse.Namespace):
    """Build the diagnostic report for one algorithm (or program file)."""
    from repro.analysis import verify_fsm_program, verify_march, verify_program

    caps = ControllerCapabilities(
        n_words=args.words, width=args.width, ports=args.ports
    )
    if args.target == "progfsm":
        from repro.analysis.diagnostics import (
            Diagnostic,
            DiagnosticReport,
            Severity,
        )
        from repro.core.progfsm.compiler import is_realizable

        test = library.get(name)
        if is_realizable(test):
            # Compile (unverified) and run the full upper-buffer
            # analysis: PF rules + termination proof + march rules.
            program = compile_to_sm(test, caps, verify=False)
            return verify_fsm_program(program, caps)
        if args.all:
            # Outside the SM0-SM7 library — the architecture's
            # flexibility boundary, by design (measured by
            # eval.flexibility).  Skipping keeps a whole-library lint
            # meaningful; lint the algorithm explicitly for the strict
            # MA004 error.
            report = DiagnosticReport(name=test.name)
            report.add(Diagnostic(
                rule="MA004",
                severity=Severity.INFO,
                message="outside the SM0-SM7 flexibility boundary — "
                        "skipped (not realisable on the programmable "
                        "FSM architecture by design)",
                hint="lint this algorithm alone for the full report",
            ))
            return report
        return verify_march(test, target="progfsm")
    if args.target == "march":
        return verify_march(library.get(name), target=None)
    if args.target == "coverage":
        from repro.analysis import verify_coverage

        return verify_coverage(library.get(name))
    if args.target == "rtl":
        from repro.rtl.readback import verify_rom_image

        program = assemble_microcode(
            library.get(name), caps, compress=not args.no_compress,
            verify=False,
        )
        return verify_rom_image(program)
    program = assemble_microcode(
        library.get(name), caps, compress=not args.no_compress, verify=False
    )
    return verify_program(program, caps)


def _cmd_lint_fix(args: argparse.Namespace) -> int:
    """``lint --fix``: apply the mechanical fixes to a program file."""
    from repro.analysis import apply_fixes, verify_program
    from repro.core.programming import dump_program, load_program

    if not args.program:
        print("error: --fix requires --program FILE (fixes rewrite a "
              "tester interchange file)", file=sys.stderr)
        return 2
    with open(args.program) as handle:
        program = load_program(handle.read())
    caps = ControllerCapabilities(
        n_words=args.words, width=args.width, ports=args.ports
    )
    result = apply_fixes(program, caps)
    if result.changed:
        with open(args.program, "w") as handle:
            handle.write(dump_program(result.program))
    report = verify_program(result.program, caps)
    if args.json:
        payload = report.to_json()
        payload["fixes_applied"] = result.applied
        print(json.dumps(payload, indent=2))
    else:
        for fix in result.applied:
            print(f"fixed: {fix}")
        if result.changed:
            print(f"rewrote {args.program}")
        else:
            print("nothing to fix")
        print(report.format())
    return 1 if report.has_errors else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.rules:
        from repro.analysis.rules import rule_catalogue

        for spec in rule_catalogue():
            print(f"{spec.rule_id}  {spec.severity.value:<7}  {spec.title}")
        return 0
    if args.fix:
        return _cmd_lint_fix(args)
    if args.program:
        from repro.analysis import verify_program
        from repro.core.programming import load_program

        with open(args.program) as handle:
            program = load_program(handle.read())
        caps = ControllerCapabilities(
            n_words=args.words, width=args.width, ports=args.ports
        )
        reports = [verify_program(program, caps)]
    else:
        names = list(library.ALGORITHMS) if args.all else [args.algorithm]
        reports = [_lint_one(name, args) for name in names]
    failed = any(report.has_errors for report in reports)
    if args.json:
        print(json.dumps([report.to_json() for report in reports], indent=2))
    else:
        for report in reports:
            print(report.format())
        if args.all:
            print(_lint_summary(reports))
    return 1 if failed else 0


def _lint_summary(reports) -> str:
    """Whole-library roll-up: finding counts per rule family (MC
    microcode, MA march, PF upper-buffer, RT readback, CV coverage)."""
    families: dict = {}
    errors = 0
    for report in reports:
        for diagnostic in report.diagnostics:
            family = diagnostic.rule[:2]
            families[family] = families.get(family, 0) + 1
            if diagnostic.severity.value == "error":
                errors += 1
    detail = (
        ", ".join(
            f"{family}: {count}" for family, count in sorted(families.items())
        )
        or "no findings"
    )
    return (
        f"summary: {len(reports)} algorithm(s) linted, {errors} error(s) "
        f"— {detail}"
    )


def _cmd_certify(args: argparse.Namespace) -> int:
    """``repro certify``: static coverage certificates, optionally
    cross-checked fault-for-fault against simulated sweeps."""
    from repro.analysis.coverage import certify
    from repro.conformance import check_coverage_conformance

    names = list(library.ALGORITHMS) if args.all else [args.algorithm]
    tests = [library.get(name) for name in names]
    geometries = (
        [_parse_geometry(token) for token in args.geometry]
        if args.geometry
        else [(args.words, args.width, args.ports)]
    )
    ok = True
    payload = []
    for geometry in geometries:
        if args.cross_check:
            result = check_coverage_conformance(tests=tests, geometry=geometry)
            ok = ok and result.ok
            payload.append(result.to_json())
            if not args.json:
                print(result.format())
        else:
            n_words, width, ports = geometry
            for test in tests:
                certificate = certify(test, n_words, width=width, ports=ports)
                payload.append(certificate.to_json())
                if not args.json:
                    print(certificate.format())
    if args.report:
        _write_report(args.report, {"results": payload})
    if args.json:
        print(json.dumps(payload, indent=2))
    return 0 if ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import os

    from repro.analysis.fuzz import run_fuzz
    from repro.conformance.faulty.check import SweepInterrupted

    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    try:
        report = run_fuzz(
            args.samples, seed=args.seed, jobs=jobs,
            conformance=not args.no_conformance,
            fault_conformance=not args.no_faults,
            coverage_conformance=not args.no_coverage,
            vector_conformance=not args.no_vector,
            infield_conformance=not args.no_infield,
            service_conformance=not args.no_service,
            prt_conformance=not args.no_prt,
        )
    except SweepInterrupted as interrupt:
        # Partial corpus, marked "interrupted": still a valid artifact.
        return _handle_interrupt(args, interrupt)
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(report.to_json(), handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.format())
    return 0 if report.ok else 1


def _conformance_caps(args: argparse.Namespace) -> ControllerCapabilities:
    return ControllerCapabilities(
        n_words=args.words, width=args.width, ports=args.ports
    )


def _cmd_conformance_run(args: argparse.Namespace) -> int:
    from repro.conformance import check_conformance

    names = list(library.ALGORITHMS) if args.all else [args.algorithm]
    caps = _conformance_caps(args)
    results = [
        check_conformance(
            library.get(name), caps, compress=not args.no_compress
        )
        for name in names
    ]
    if args.json:
        print(json.dumps([r.to_dict() for r in results], indent=2))
    else:
        for result in results:
            print(result.format())
    return 0 if all(r.ok for r in results) else 1


def _parse_geometry(token: str) -> tuple:
    """Parse a ``WORDSxWIDTH[xPORTS]`` geometry flag, e.g. ``8x1x1``."""
    parts = token.lower().split("x")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"bad geometry {token!r} (expected WORDSxWIDTH or "
            f"WORDSxWIDTHxPORTS, e.g. 4x2x1)"
        )
    try:
        numbers = [int(part) for part in parts]
    except ValueError:
        raise ValueError(
            f"bad geometry {token!r}: every component must be an integer"
        ) from None
    if any(number <= 0 for number in numbers):
        raise ValueError(f"bad geometry {token!r}: components must be >= 1")
    if len(numbers) == 2:
        numbers.append(1)
    return tuple(numbers)


def _write_report(path: str, payload: dict) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def _cmd_conformance_run_faulty(args: argparse.Namespace) -> int:
    import os
    import time

    from repro.conformance import (
        FaultSweepReport,
        check_cross_engine,
        check_fault_conformance,
        run_fault_sweep,
        run_fault_sweeps,
        sweep_faults,
    )

    names = list(library.ALGORITHMS) if args.all else [args.algorithm]
    tests = [library.get(name) for name in names]
    compress = not args.no_compress
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    explicit_faults = (
        [parse_fault(spec) for spec in args.fault] if args.fault else None
    )
    if args.geometry:
        # Multi-geometry driver: one report with a section per geometry,
        # each drawing its own (geometry-dependent) fault population
        # unless --fault pinned one explicitly.
        geometries = [_parse_geometry(token) for token in args.geometry]
        if args.cross_engine:
            reports = {
                engine: run_fault_sweeps(
                    geometries,
                    tests,
                    faults=explicit_faults,
                    per_kind=args.per_kind,
                    seed=args.seed,
                    full=args.full_universe,
                    compress=compress,
                    max_ops=args.max_ops,
                    jobs=jobs,
                    engine=engine,
                    mode=args.mode,
                )
                for engine in ("scalar", "vector")
            }
            identical = (
                reports["scalar"].to_json(include_timing=False)
                == reports["vector"].to_json(include_timing=False)
            )
            payload = {
                "ok": identical and reports["scalar"].ok,
                "identical": identical,
                "scalar": reports["scalar"].to_json(),
                "vector": reports["vector"].to_json(),
            }
            if args.report:
                _write_report(args.report, payload)
            if args.json:
                print(json.dumps(payload, indent=2))
            else:
                print(
                    "cross-engine multi-geometry sweep: "
                    + ("IDENTICAL" if identical else "DIVERGED")
                )
                for engine in ("scalar", "vector"):
                    print(f"--- {engine} ---")
                    print(reports[engine].format())
            return 0 if payload["ok"] else 1
        report = run_fault_sweeps(
            geometries,
            tests,
            faults=explicit_faults,
            per_kind=args.per_kind,
            seed=args.seed,
            full=args.full_universe,
            compress=compress,
            max_ops=args.max_ops,
            jobs=jobs,
            engine=args.engine,
            mode=args.mode,
        )
        if args.report:
            _write_report(args.report, report.to_json())
        if args.json:
            print(json.dumps(report.to_json(), indent=2))
        else:
            print(report.format())
        return 0 if report.ok else 1
    caps = _conformance_caps(args)
    faults = (
        explicit_faults
        if explicit_faults is not None
        else sweep_faults(
            caps,
            per_kind=args.per_kind,
            seed=args.seed,
            full=args.full_universe,
            mode=args.mode,
        )
    )
    if args.cross_engine:
        result = check_cross_engine(
            tests, caps, faults, compress=compress, max_ops=args.max_ops,
            jobs=jobs, mode=args.mode,
        )
        if args.report:
            _write_report(args.report, result.to_json())
        if args.json:
            print(json.dumps(result.to_json(), indent=2))
        else:
            print(result.format())
        return 0 if result.ok and result.scalar.ok else 1
    if args.engine == "scalar" and len(tests) == 1 and len(faults) == 1:
        started = time.perf_counter()
        result = check_fault_conformance(
            tests[0], caps, faults[0], compress=compress,
            max_ops=args.max_ops, mode=args.mode,
        )
        if args.report:
            # A one-run sweep JSON, so --report behaves identically
            # whether the run happens to be a single pair or a sweep.
            sweep = FaultSweepReport(
                geometry=(caps.n_words, caps.width, caps.ports)
            )
            sweep.add(result)
            sweep.wall_time_s = time.perf_counter() - started
            _write_report(args.report, sweep.to_json())
        if args.json:
            print(json.dumps(result.to_dict(), indent=2))
        else:
            print(result.format())
        return 0 if result.ok else 1
    report = run_fault_sweep(
        tests, caps, faults, compress=compress, max_ops=args.max_ops,
        jobs=jobs, engine=args.engine, mode=args.mode,
    )
    if args.report:
        _write_report(args.report, report.to_json())
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.format())
    return 0 if report.ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Service-backed fault sweep: resumable, crash-tolerant, cached."""
    import os

    from repro.conformance import run_fault_sweeps
    from repro.service import ResultStore

    names = list(library.ALGORITHMS) if args.all else [args.algorithm]
    tests = [library.get(name) for name in names]
    compress = not args.no_compress
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    store = ResultStore(args.store) if args.store else None
    explicit_faults = (
        [parse_fault(spec) for spec in args.fault] if args.fault else None
    )
    geometries = (
        [_parse_geometry(token) for token in args.geometry]
        if args.geometry
        else [(args.words, args.width, args.ports)]
    )
    service_kwargs = dict(
        store=store,
        resume=args.resume,
        shard_timeout=args.shard_timeout,
    )
    if args.cross_engine:
        reports = {
            engine: run_fault_sweeps(
                geometries, tests, faults=explicit_faults,
                per_kind=args.per_kind, seed=args.seed,
                full=args.full_universe, compress=compress,
                max_ops=args.max_ops, jobs=jobs, engine=engine,
                mode=args.mode, **service_kwargs,
            )
            for engine in ("scalar", "vector")
        }
        identical = (
            reports["scalar"].to_json(include_timing=False)
            == reports["vector"].to_json(include_timing=False)
        )
        payload = {
            "ok": identical and reports["scalar"].ok,
            "identical": identical,
            "scalar": reports["scalar"].to_json(),
            "vector": reports["vector"].to_json(),
        }
        if store is not None:
            payload["store"] = store.stats()
        if args.report:
            _write_report(args.report, payload)
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            print(
                "cross-engine sweep: "
                + ("IDENTICAL" if identical else "DIVERGED")
            )
            for engine in ("scalar", "vector"):
                print(f"--- {engine} ---")
                print(reports[engine].format())
        return 0 if payload["ok"] else 1
    report = run_fault_sweeps(
        geometries, tests, faults=explicit_faults, per_kind=args.per_kind,
        seed=args.seed, full=args.full_universe, compress=compress,
        max_ops=args.max_ops, jobs=jobs, engine=args.engine,
        mode=args.mode, **service_kwargs,
    )
    payload = report.to_json()
    if store is not None:
        payload["store"] = store.stats()
    if args.report:
        _write_report(args.report, payload)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(report.format())
        if store is not None:
            stats = store.stats()
            print(
                f"store: {stats['hits']} hit(s), {stats['misses']} "
                f"miss(es), {stats['corruptions']} corruption(s), "
                f"{stats['puts']} put(s)"
            )
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """File-backed sweep sessions (configure→start→poll→collect)."""
    from repro.service import (
        collect_session,
        list_sessions,
        run_session,
        session_status,
        submit_session,
    )

    if args.serve_command == "submit":
        spec = {
            "algorithms": (
                "all" if args.all else [args.algorithm]
            ),
            "geometries": [
                list(_parse_geometry(token))
                for token in (args.geometry or ["8x2x1"])
            ],
            "per_kind": args.per_kind,
            "seed": args.seed,
            "full": args.full_universe,
            "compress": not args.no_compress,
            "max_ops": args.max_ops,
            "engine": args.engine,
            "mode": args.mode,
        }
        sid = submit_session(args.root, spec)
        print(json.dumps({"session": sid, "state": "submitted"}, indent=2)
              if args.json else sid)
        return 0
    if args.serve_command == "run":
        payload = run_session(
            args.root, args.session, jobs=args.jobs,
            shard_timeout=args.shard_timeout,
        )
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            status = session_status(args.root, args.session)
            print(f"session {args.session}: {status['state']} "
                  f"({status.get('checked', 0)} runs, "
                  f"{status.get('failures', 0)} failure(s))")
        return 0 if payload.get("ok") else 1
    if args.serve_command == "status":
        statuses = (
            [session_status(args.root, args.session)]
            if args.session
            else list_sessions(args.root)
        )
        if args.json:
            print(json.dumps(statuses, indent=2))
        else:
            for status in statuses:
                print(f"{status['session']}  {status['state']:<12} "
                      f"{status.get('checked', 0)} runs, "
                      f"{status.get('failures', 0)} failure(s)")
            if not statuses:
                print("no sessions")
        return 0
    # collect
    payload = collect_session(args.root, args.session)
    print(json.dumps(payload, indent=2))
    return 0 if payload.get("ok") else 1


def _cmd_conformance_record(args: argparse.Namespace) -> int:
    import pathlib

    from repro.conformance import promote_from_report, record_golden
    from repro.conformance.corpus import record_streams

    root = pathlib.Path(args.corpus_dir)
    if args.from_report:
        with open(args.from_report) as handle:
            report = json.load(handle)
        written = promote_from_report(root, report)
        if not written:
            print(f"no mismatches to promote in {args.from_report}")
            return 0
    elif args.streams:
        written = record_streams(root)
    else:
        written = record_golden(root)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_conformance_shrink(args: argparse.Namespace) -> int:
    from repro.conformance import (
        check_conformance,
        conformance_predicate,
        shrink_sample,
    )

    if args.sample:
        import random as random_module

        from repro.analysis.fuzz import random_geometry, random_march

        rng = random_module.Random(args.sample)
        test = random_march(rng)
        caps = random_geometry(rng)
        compress = rng.random() < 0.5
    else:
        if not args.notation:
            print("error: shrink needs --sample SEED:INDEX or "
                  "--notation 'MARCH'", file=sys.stderr)
            return 2
        from repro.march.notation import parse_test

        test = parse_test(args.notation, name="sample")
        caps = _conformance_caps(args)
        compress = not args.no_compress
    if args.fault:
        return _shrink_faulty(args, test, caps, compress)
    initial = check_conformance(test, caps, compress=compress)
    if initial.ok:
        print(f"sample conforms on {initial.geometry} — nothing to shrink")
        return 1
    shrunk = shrink_sample(
        test, caps, conformance_predicate(compress=compress)
    )
    if args.json:
        payload = shrunk.to_dict()
        payload["original"] = initial.to_dict()
        print(json.dumps(payload, indent=2))
    else:
        print(f"original  {initial.geometry}: {format_test(test)}")
        print(f"shrunk    {shrunk.geometry}: {shrunk.notation} "
              f"({shrunk.checks} predicate checks)")
        final = check_conformance(
            shrunk.test, shrunk.capabilities, compress=compress
        )
        print(final.format())
    return 0


def _shrink_faulty(
    args: argparse.Namespace,
    test,
    caps: ControllerCapabilities,
    compress: bool,
) -> int:
    """``conformance shrink --fault``: three-axis faulty-sample shrink."""
    from repro.conformance import (
        check_fault_conformance,
        fault_response_predicate,
        shrink_faulty_sample,
    )

    fault_spec = args.fault
    mode = getattr(args, "mode", "sequential")
    initial = check_fault_conformance(
        test, caps, parse_fault(fault_spec), compress=compress, mode=mode
    )
    if initial.ok:
        print(
            f"sample's fault response conforms on {initial.geometry} "
            f"under {fault_spec} [{mode} mode] — nothing to shrink"
        )
        return 1
    shrunk = shrink_faulty_sample(
        test,
        caps,
        fault_spec,
        fault_response_predicate(compress=compress, mode=mode),
    )
    if args.json:
        payload = shrunk.to_dict()
        payload["original"] = initial.to_dict()
        print(json.dumps(payload, indent=2))
    else:
        print(f"original  {initial.geometry}: {format_test(test)} "
              f"under {fault_spec}")
        print(f"shrunk    {shrunk.geometry}: {shrunk.notation} "
              f"under {shrunk.fault_spec} "
              f"({shrunk.checks} predicate checks)")
        final = check_fault_conformance(
            shrunk.test,
            shrunk.capabilities,
            parse_fault(shrunk.fault_spec),
            compress=compress,
            mode=mode,
        )
        print(final.format())
    return 0


def _cmd_conformance_corpus_check(args: argparse.Namespace) -> int:
    import pathlib

    from repro.conformance import check_corpus

    report = check_corpus(pathlib.Path(args.corpus_dir))
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format())
    return 0 if report.ok else 1


def _prt_session(args: argparse.Namespace):
    from repro.prt import PrtConfig, PrtSession

    return PrtSession(PrtConfig(
        passes=args.passes, seed=args.prt_seed, order=args.order
    ))


def _cmd_prt_coverage(args: argparse.Namespace) -> int:
    from repro.eval.prt_study import prt_vs_march

    session = _prt_session(args)
    geometries = [
        _parse_geometry(token) for token in (args.geometry or ["8x1x1"])
    ]
    payload = []
    ok = True
    for n_words, width, ports in geometries:
        report = prt_vs_march(
            n_words, width=width, ports=ports, session=session,
            baseline=args.baseline, include_npsf=not args.no_npsf,
        )
        payload.append(report.to_json())
        if not args.json:
            print(report.format())
        overall = 100.0 * report.prt.overall
        if args.min_overall is not None and overall < args.min_overall:
            ok = False
            print(
                f"FAIL: PRT overall coverage {overall:.1f}% on "
                f"{(n_words, width, ports)} is below --min-overall "
                f"{args.min_overall:.1f}%",
                file=sys.stderr,
            )
    if args.report:
        _write_report(args.report, {"results": payload})
    if args.json:
        print(json.dumps(payload, indent=2))
    return 0 if ok else 1


def _cmd_prt_conformance(args: argparse.Namespace) -> int:
    import os

    from repro.conformance import run_fault_sweeps
    from repro.prt import PRT_RING_DOWN, PRT_RING_UP

    geometries = [
        _parse_geometry(token)
        for token in (args.geometry or ["4x1x1", "3x2x2"])
    ]
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    report = run_fault_sweeps(
        geometries,
        [PRT_RING_UP, PRT_RING_DOWN],
        per_kind=args.per_kind,
        seed=args.seed,
        full=args.full_universe,
        max_ops=args.max_ops,
        jobs=jobs,
    )
    if args.report:
        _write_report(args.report, report.to_json())
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.format())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Programmable memory BIST (Zarrineh & Upadhyaya, DATE 1999)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run a BIST self-test")
    _add_geometry_args(run)
    run.add_argument(
        "--architecture", choices=sorted(ARCHITECTURES), default="microcode"
    )
    run.add_argument(
        "--fault", action="append",
        help="inject a fault (repeatable); e.g. saf:3:0:1",
    )
    run.add_argument(
        "--diagnose", action="store_true",
        help="full fail capture + bitmap + classification on failure",
    )
    run.add_argument(
        "--area", action="store_true", help="print the area breakdown"
    )
    run.set_defaults(handler=_cmd_run)

    assemble_cmd = commands.add_parser(
        "assemble", help="print an algorithm's BIST program"
    )
    _add_geometry_args(assemble_cmd)
    assemble_cmd.add_argument(
        "--format", choices=["microcode", "fsm", "interchange"],
        default="microcode",
    )
    assemble_cmd.set_defaults(handler=_cmd_assemble)

    algorithms = commands.add_parser(
        "algorithms", help="list the library algorithms"
    )
    algorithms.set_defaults(handler=_cmd_algorithms)

    recommend_cmd = commands.add_parser(
        "recommend",
        help="cheapest algorithm covering the given fault classes",
    )
    recommend_cmd.add_argument(
        "--classes", required=True,
        help="comma-separated fault classes, e.g. SAF,TF,DRF",
    )
    recommend_cmd.add_argument(
        "--words", type=int, default=8,
        help="array size for the measurement sweep",
    )
    recommend_cmd.set_defaults(handler=_cmd_recommend)

    report = commands.add_parser(
        "report", help="render a markdown datasheet for a configuration"
    )
    _add_geometry_args(report)
    report.add_argument(
        "--architecture", choices=sorted(ARCHITECTURES), default="microcode"
    )
    report.add_argument("--output", help="write to a file instead of stdout")
    report.set_defaults(handler=_cmd_report)

    lint = commands.add_parser(
        "lint", help="statically verify programs without running them"
    )
    _add_geometry_args(lint)
    lint.add_argument(
        "--all", action="store_true",
        help="lint every library algorithm instead of --algorithm",
    )
    lint.add_argument(
        "--target",
        choices=["microcode", "progfsm", "march", "rtl", "coverage"],
        default="microcode",
        help="microcode: assemble and verify the program; progfsm: check "
        "SM0-SM7 realisability; march: architecture-neutral checks only; "
        "rtl: check the exported ROM image decodes back bit-exactly; "
        "coverage: statically prove per-fault coverage and report escapes",
    )
    lint.add_argument(
        "--no-compress", action="store_true",
        help="assemble without REPEAT compression (microcode target)",
    )
    lint.add_argument(
        "--program", metavar="FILE",
        help="lint a tester interchange file instead of a library algorithm",
    )
    lint.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    lint.add_argument(
        "--rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.add_argument(
        "--fix", action="store_true",
        help="apply the mechanical fixes (terminator, dead rows, REPEAT "
        "re-compression) to the --program file in place",
    )
    lint.set_defaults(handler=_cmd_lint)

    fuzz = commands.add_parser(
        "fuzz",
        help="fuzz the static verifier against the cycle-accurate "
        "simulators",
    )
    fuzz.add_argument(
        "--samples", type=int, default=500, help="corpus size"
    )
    fuzz.add_argument(
        "--seed", type=int, default=0,
        help="master seed; reports are deterministic per (seed, samples)",
    )
    fuzz.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes (0 = one per CPU)",
    )
    fuzz.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    fuzz.add_argument(
        "--report", metavar="FILE",
        help="also write the JSON report to FILE (CI artifact; failing "
        "samples carry their shrunk reproducers)",
    )
    fuzz.add_argument(
        "--no-conformance", action="store_true",
        help="skip identity (d), op-for-op behavioural equivalence",
    )
    fuzz.add_argument(
        "--no-faults", action="store_true",
        help="skip identity (e), fault-response equivalence on a "
        "randomly faulted memory",
    )
    fuzz.add_argument(
        "--no-coverage", action="store_true",
        help="skip identity (f), static coverage certificate vs "
        "simulated fault sweep",
    )
    fuzz.add_argument(
        "--no-vector", action="store_true",
        help="skip identity (g), scalar-vs-vector sweep-engine report "
        "equality on the identity-(e) sample (auto-skipped without "
        "numpy)",
    )
    fuzz.add_argument(
        "--no-infield", action="store_true",
        help="skip identity (h), the fault-free and mid-stream-"
        "injection in-field transparent session pair",
    )
    fuzz.add_argument(
        "--no-service", action="store_true",
        help="skip identity (i), interrupted-then-resumed sweep vs "
        "uninterrupted serial sweep byte-equality",
    )
    fuzz.add_argument(
        "--no-prt", action="store_true",
        help="skip identity (j), pseudo-ring session determinism and "
        "controller/session agreement",
    )
    fuzz.set_defaults(handler=_cmd_fuzz)

    sweep_cmd = commands.add_parser(
        "sweep",
        help="service-backed fault-response sweep: crash-tolerant "
        "workers, per-shard timeouts, and a content-hashed result "
        "store that makes interrupted sweeps resumable (--resume) and "
        "reruns cache hits",
    )
    _add_geometry_args(sweep_cmd)
    sweep_cmd.add_argument(
        "--all", action="store_true",
        help="sweep every library algorithm instead of --algorithm",
    )
    sweep_cmd.add_argument(
        "--fault", action="append", metavar="SPEC",
        help="fault spec(s) to inject (repeatable); default: a "
        "stratified sample of the standard universe",
    )
    sweep_cmd.add_argument(
        "--per-kind", type=int, default=3,
        help="stratified-sample size per fault kind (default: 3)",
    )
    sweep_cmd.add_argument(
        "--full-universe", action="store_true",
        help="sweep the whole spec-expressible standard universe",
    )
    sweep_cmd.add_argument(
        "--seed", type=int, default=0,
        help="stratified-sample seed (default: 0)",
    )
    sweep_cmd.add_argument(
        "--max-ops", type=int, default=None,
        help="per-run op budget (default: 4x the golden stream length)",
    )
    sweep_cmd.add_argument(
        "--jobs", type=int, default=1,
        help="engine worker processes (0 = one per CPU); the report is "
        "identical regardless, timing aside (default: 1)",
    )
    sweep_cmd.add_argument(
        "--geometry", action="append", metavar="WxBxP",
        help="memory geometry WORDSxWIDTH[xPORTS] to sweep "
        "(repeatable); overrides --words/--width/--ports",
    )
    sweep_cmd.add_argument(
        "--no-compress", action="store_true",
        help="assemble the microcode without REPEAT compression",
    )
    sweep_cmd.add_argument(
        "--mode", choices=("sequential", "concurrent", "infield"),
        default="sequential",
        help="stimulus regime (see 'conformance run-faulty --mode')",
    )
    sweep_cmd.add_argument(
        "--engine", choices=("scalar", "vector"), default="scalar",
        help="sweep engine (see 'conformance run-faulty --engine')",
    )
    sweep_cmd.add_argument(
        "--cross-engine", action="store_true",
        help="run the sweep through BOTH engines and fail unless the "
        "reports are byte-identical (timing aside)",
    )
    sweep_cmd.add_argument(
        "--store", metavar="DIR",
        help="result-store directory: completed shards are "
        "checkpointed here and reruns of identical workloads (same "
        "inputs, same code version) become cache hits",
    )
    sweep_cmd.add_argument(
        "--resume", action="store_true",
        help="reuse matching shard results already in --store (resume "
        "an interrupted sweep, or skip unchanged reruns)",
    )
    sweep_cmd.add_argument(
        "--shard-timeout", type=float, default=None, metavar="S",
        help="per-shard wall-clock budget in seconds; a shard past it "
        "is killed and retried (default: none)",
    )
    sweep_cmd.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    sweep_cmd.add_argument(
        "--report", metavar="FILE",
        help="also write the JSON sweep report to FILE (on SIGINT the "
        "partial report is written, marked interrupted)",
    )
    sweep_cmd.set_defaults(handler=_cmd_sweep)

    serve = commands.add_parser(
        "serve",
        help="file-backed sweep sessions in the BIST handshake idiom: "
        "submit (configure), run (start/resume), status (poll), "
        "collect",
    )
    serve_commands = serve.add_subparsers(
        dest="serve_command", required=True
    )

    def _serve_common(sub):
        sub.add_argument(
            "--root", default=".repro-service", metavar="DIR",
            help="service root holding the store and sessions "
            "(default: .repro-service)",
        )
        sub.add_argument(
            "--json", action="store_true", help="machine-readable output"
        )

    serve_submit = serve_commands.add_parser(
        "submit", help="configure a sweep session; prints its id"
    )
    _serve_common(serve_submit)
    serve_submit.add_argument(
        "--algorithm", default="March C",
        help='library algorithm name (see "algorithms")',
    )
    serve_submit.add_argument(
        "--all", action="store_true",
        help="sweep every library algorithm",
    )
    serve_submit.add_argument(
        "--geometry", action="append", metavar="WxBxP",
        help="memory geometry (repeatable; default: 8x2x1)",
    )
    serve_submit.add_argument("--per-kind", type=int, default=2)
    serve_submit.add_argument("--seed", type=int, default=0)
    serve_submit.add_argument("--full-universe", action="store_true")
    serve_submit.add_argument("--no-compress", action="store_true")
    serve_submit.add_argument("--max-ops", type=int, default=None)
    serve_submit.add_argument(
        "--engine", choices=("scalar", "vector"), default="scalar"
    )
    serve_submit.add_argument(
        "--mode", choices=("sequential", "concurrent", "infield"),
        default="sequential",
    )
    serve_submit.set_defaults(handler=_cmd_serve)

    serve_run = serve_commands.add_parser(
        "run", help="start (or resume) a submitted session"
    )
    _serve_common(serve_run)
    serve_run.add_argument("session", help="session id from submit")
    serve_run.add_argument(
        "--jobs", type=int, default=1, help="engine worker processes"
    )
    serve_run.add_argument(
        "--shard-timeout", type=float, default=None, metavar="S",
        help="per-shard wall-clock budget in seconds",
    )
    serve_run.set_defaults(handler=_cmd_serve)

    serve_status = serve_commands.add_parser(
        "status", help="poll one session (or list all)"
    )
    _serve_common(serve_status)
    serve_status.add_argument(
        "session", nargs="?", help="session id (default: list all)"
    )
    serve_status.set_defaults(handler=_cmd_serve)

    serve_collect = serve_commands.add_parser(
        "collect", help="print a finished session's report JSON"
    )
    _serve_common(serve_collect)
    serve_collect.add_argument("session", help="session id")
    serve_collect.set_defaults(handler=_cmd_serve)

    certify_cmd = commands.add_parser(
        "certify",
        help="statically prove per-fault coverage (the coverage "
        "certificate), optionally cross-checked against simulation",
    )
    certify_cmd.add_argument(
        "--algorithm", default="March C",
        help='library algorithm name (see "algorithms")',
    )
    certify_cmd.add_argument(
        "--all", action="store_true",
        help="certify every library algorithm instead of --algorithm",
    )
    certify_cmd.add_argument(
        "--words", type=int, default=8, help="memory depth"
    )
    certify_cmd.add_argument(
        "--width", type=int, default=1, help="word width"
    )
    certify_cmd.add_argument(
        "--ports", type=int, default=1, help="port count"
    )
    certify_cmd.add_argument(
        "--geometry", action="append", metavar="WxBxP",
        help="memory geometry WORDSxWIDTH[xPORTS] (repeatable; overrides "
        "--words/--width/--ports)",
    )
    certify_cmd.add_argument(
        "--cross-check", action="store_true",
        help="validate every verdict fault-for-fault against a simulated "
        "sweep of the full standard universe (exit 1 on disagreement)",
    )
    certify_cmd.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    certify_cmd.add_argument(
        "--report", metavar="FILE",
        help="also write the JSON results to FILE (CI artifact)",
    )
    certify_cmd.set_defaults(handler=_cmd_certify)

    conformance = commands.add_parser(
        "conformance",
        help="differential op-for-op conformance of the three "
        "architectures against the golden march expansion",
    )
    conf_commands = conformance.add_subparsers(
        dest="conformance_command", required=True
    )

    conf_run = conf_commands.add_parser(
        "run", help="check one algorithm (or the whole library) now"
    )
    _add_geometry_args(conf_run)
    conf_run.add_argument(
        "--all", action="store_true",
        help="check every library algorithm instead of --algorithm",
    )
    conf_run.add_argument(
        "--no-compress", action="store_true",
        help="assemble the microcode without REPEAT compression",
    )
    conf_run.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    conf_run.set_defaults(handler=_cmd_conformance_run)

    conf_faulty = conf_commands.add_parser(
        "run-faulty",
        help="differential fault-response conformance: run every "
        "architecture's BIST session against the same injected fault "
        "and compare fail events, fail logs and diagnosis",
    )
    _add_geometry_args(conf_faulty)
    conf_faulty.add_argument(
        "--all", action="store_true",
        help="sweep every library algorithm instead of --algorithm",
    )
    conf_faulty.add_argument(
        "--fault", action="append", metavar="SPEC",
        help="fault spec(s) to inject (e.g. saf:3:0:1; repeatable); "
        "default: a stratified sample of the standard universe",
    )
    conf_faulty.add_argument(
        "--per-kind", type=int, default=3,
        help="stratified-sample size per fault kind (default: 3)",
    )
    conf_faulty.add_argument(
        "--full-universe", action="store_true",
        help="sweep the whole spec-expressible standard universe "
        "(nightly mode) instead of a stratified sample",
    )
    conf_faulty.add_argument(
        "--seed", type=int, default=0,
        help="stratified-sample seed (default: 0)",
    )
    conf_faulty.add_argument(
        "--max-ops", type=int, default=None,
        help="per-run op budget (default: 4x the golden stream length)",
    )
    conf_faulty.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes sharding the (algorithm, fault) product "
        "(0 = one per CPU); the report is identical regardless, timing "
        "aside (default: 1)",
    )
    conf_faulty.add_argument(
        "--geometry", action="append", metavar="WxBxP",
        help="memory geometry WORDSxWIDTH[xPORTS] to sweep (repeatable; "
        "e.g. --geometry 4x2x1 --geometry 8x1x1); overrides "
        "--words/--width/--ports and produces one report with a "
        "section per geometry",
    )
    conf_faulty.add_argument(
        "--no-compress", action="store_true",
        help="assemble the microcode without REPEAT compression",
    )
    conf_faulty.add_argument(
        "--mode", choices=("sequential", "concurrent", "infield"),
        default="sequential",
        help="stimulus regime: 'sequential' is the architecture "
        "differential on the golden expansion; 'concurrent' replays "
        "the same-cycle dual-port expansion (multi-port geometries "
        "additionally sweep the PAFc/CFxp concurrency stratum); "
        "'infield' replays a deterministic in-field transparent "
        "session built from the algorithm's transparent variant",
    )
    conf_faulty.add_argument(
        "--engine", choices=("scalar", "vector"), default="scalar",
        help="sweep engine: 'scalar' simulates every run on the Sram "
        "model (the oracle); 'vector' evaluates fault batches with the "
        "numpy lane kernel (10-100x faster, identical report payload; "
        "faults without lane semantics fall back to scalar and are "
        "counted in timing.fallback_runs)",
    )
    conf_faulty.add_argument(
        "--cross-engine", action="store_true",
        help="run the sweep through BOTH engines and fail unless the "
        "reports are byte-identical (timing aside) - conformance "
        "identity (g)",
    )
    conf_faulty.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    conf_faulty.add_argument(
        "--report", metavar="FILE",
        help="also write the JSON sweep report to FILE (CI artifact)",
    )
    conf_faulty.set_defaults(handler=_cmd_conformance_run_faulty)

    conf_record = conf_commands.add_parser(
        "record",
        help="(re)write the golden or stream corpus, or promote "
        "fuzz-report mismatches into tests/corpus/regressions/",
    )
    conf_record.add_argument(
        "--corpus-dir", default="tests/corpus",
        help="corpus root (default: tests/corpus)",
    )
    conf_record.add_argument(
        "--from-report", metavar="FILE",
        help="promote the mismatches of a fuzz JSON report "
        "(their shrunk reproducers) instead of re-recording the "
        "golden corpus",
    )
    conf_record.add_argument(
        "--streams", action="store_true",
        help="(re)write the stream corpus (classical tests and "
        "transparent transforms) instead of the golden march corpus",
    )
    conf_record.set_defaults(handler=_cmd_conformance_record)

    conf_shrink = conf_commands.add_parser(
        "shrink", help="delta-debug a failing sample to a minimal "
        "reproducer",
    )
    _add_geometry_args(conf_shrink)
    conf_shrink.add_argument(
        "--sample", metavar="SEED:INDEX",
        help="regenerate a fuzz sample from its per-sample seed string",
    )
    conf_shrink.add_argument(
        "--notation", metavar="MARCH",
        help="shrink an explicit march algorithm (with the geometry "
        "flags) instead of a fuzz sample",
    )
    conf_shrink.add_argument(
        "--no-compress", action="store_true",
        help="assemble the microcode without REPEAT compression "
        "(--notation mode)",
    )
    conf_shrink.add_argument(
        "--fault", metavar="SPEC",
        help="shrink a fault-response failure instead: delta-debug "
        "(march, geometry, fault spec) over all three axes",
    )
    conf_shrink.add_argument(
        "--mode", choices=("sequential", "concurrent", "infield"),
        default="sequential",
        help="stimulus regime the --fault predicate re-checks under "
        "(see 'run-faulty --mode')",
    )
    conf_shrink.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    conf_shrink.set_defaults(handler=_cmd_conformance_shrink)

    conf_check = conf_commands.add_parser(
        "corpus-check",
        help="validate every checked-in golden/regression trace",
    )
    conf_check.add_argument(
        "--corpus-dir", default="tests/corpus",
        help="corpus root (default: tests/corpus)",
    )
    conf_check.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    conf_check.set_defaults(handler=_cmd_conformance_corpus_check)

    prt = commands.add_parser(
        "prt",
        help="pseudo-ring testing: the non-march stimulus family "
        "(memory-as-LFSR-ring circulation sessions)",
    )
    prt_commands = prt.add_subparsers(dest="prt_command", required=True)

    def _prt_session_args(sub):
        sub.add_argument(
            "--passes", type=int, default=4,
            help="circulation passes (default: 4, a 10N+4T session)",
        )
        sub.add_argument(
            "--prt-seed", type=lambda t: int(t, 0), default=0x2D5C,
            metavar="SEED",
            help="seed-LFSR initial state, non-zero 16-bit "
            "(default: 0x2D5C, tuned for coverage)",
        )
        sub.add_argument(
            "--order", choices=("up", "down"), default="up",
            help="ring orientation (default: up)",
        )

    prt_coverage = prt_commands.add_parser(
        "coverage",
        help="simulated fault coverage of a PRT session vs a march "
        "baseline over the standard universe, per fault kind",
    )
    _prt_session_args(prt_coverage)
    prt_coverage.add_argument(
        "--baseline", default="March C",
        help="march library algorithm to compare against "
        "(default: March C)",
    )
    prt_coverage.add_argument(
        "--geometry", action="append", metavar="WxBxP",
        help="memory geometry WORDSxWIDTH[xPORTS] (repeatable; "
        "default: 8x1x1)",
    )
    prt_coverage.add_argument(
        "--no-npsf", action="store_true",
        help="exclude the neighbourhood pattern-sensitive stratum",
    )
    prt_coverage.add_argument(
        "--min-overall", type=float, default=None, metavar="PERCENT",
        help="exit 1 unless PRT's overall coverage reaches PERCENT on "
        "every geometry (CI gate)",
    )
    prt_coverage.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    prt_coverage.add_argument(
        "--report", metavar="FILE",
        help="also write the JSON results to FILE (CI artifact)",
    )
    prt_coverage.set_defaults(handler=_cmd_prt_coverage)

    prt_conf = prt_commands.add_parser(
        "conformance",
        help="differential fault-response conformance of the "
        "cycle-stepped PRT controller against the golden session "
        "expansion (the pinned session pair, per geometry)",
    )
    prt_conf.add_argument(
        "--geometry", action="append", metavar="WxBxP",
        help="memory geometry WORDSxWIDTH[xPORTS] to sweep "
        "(repeatable; default: 4x1x1 and 3x2x2)",
    )
    prt_conf.add_argument(
        "--per-kind", type=int, default=3,
        help="stratified-sample size per fault kind (default: 3)",
    )
    prt_conf.add_argument(
        "--full-universe", action="store_true",
        help="sweep the whole spec-expressible standard universe "
        "(nightly mode) instead of a stratified sample",
    )
    prt_conf.add_argument(
        "--seed", type=int, default=0,
        help="stratified-sample seed (default: 0)",
    )
    prt_conf.add_argument(
        "--max-ops", type=int, default=None,
        help="per-run op budget (default: 4x the golden stream length)",
    )
    prt_conf.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes sharding the (session, fault) product "
        "(0 = one per CPU; default: 1)",
    )
    prt_conf.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    prt_conf.add_argument(
        "--report", metavar="FILE",
        help="also write the JSON sweep report to FILE (CI artifact)",
    )
    prt_conf.set_defaults(handler=_cmd_prt_conformance)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Output piped into e.g. `head`; exit quietly like other CLIs.
        return 0
    except (FaultSpecError, KeyError, LookupError, OSError,
            ValueError) as error:
        # str(KeyError) is the repr of its argument — unwrap it so the
        # message is not double-quoted on stderr.
        message = (
            error.args[0]
            if isinstance(error, KeyError) and error.args
            else error
        )
        print(f"error: {message}", file=sys.stderr)
        return 2
    except RuntimeError as error:
        # SweepInterrupted (SIGINT mid-sweep) gets the partial-artifact
        # exit; any other RuntimeError propagates as before.
        from repro.conformance.faulty.check import SweepInterrupted

        if isinstance(error, SweepInterrupted):
            return _handle_interrupt(args, error)
        raise


def _handle_interrupt(args: argparse.Namespace, interrupt) -> int:
    """SIGINT exit for sweep commands: write the partial artifact.

    The partial report is marked ``"interrupted": true``; rerunning the
    same command against the same ``--store`` resumes from it.  Exit
    code follows the 128+SIGINT convention.
    """
    report = interrupt.report
    payload = report.to_json()
    if getattr(args, "report", None):
        _write_report(args.report, payload)
    if getattr(args, "json", False):
        print(json.dumps(payload, indent=2), flush=True)
    else:
        print(report.format(), flush=True)
        print("interrupted: partial report preserved "
              "(rerun with --resume to finish)", file=sys.stderr)
    return 130
