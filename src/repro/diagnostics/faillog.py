"""Ordered fail-event capture for diagnostic BIST runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.march.simulator import Failure


@dataclass
class FailLog:
    """All read mismatches of one diagnostic BIST run, in order.

    Built from :class:`repro.core.bist_unit.BistResult` failures; offers
    the aggregations the classifier and bitmap need.

    Attributes:
        test_name: algorithm that produced the log.
        failures: raw events in occurrence order.
    """

    test_name: str
    failures: List[Failure] = field(default_factory=list)

    @classmethod
    def from_result(cls, result) -> "FailLog":
        """Build from a :class:`repro.core.bist_unit.BistResult`."""
        return cls(test_name=result.test_name, failures=list(result.failures))

    @property
    def is_clean(self) -> bool:
        return not self.failures

    def failing_addresses(self) -> List[int]:
        """Distinct failing addresses, in first-failure order."""
        seen: Set[int] = set()
        ordered: List[int] = []
        for failure in self.failures:
            if failure.address not in seen:
                seen.add(failure.address)
                ordered.append(failure.address)
        return ordered

    def failing_cells(self) -> List[Tuple[int, int]]:
        """Distinct failing (address, bit) cells, in first-failure order."""
        seen: Set[Tuple[int, int]] = set()
        ordered: List[Tuple[int, int]] = []
        for failure in self.failures:
            bits = failure.failing_bits
            bit = 0
            while bits:
                if bits & 1 and (failure.address, bit) not in seen:
                    seen.add((failure.address, bit))
                    ordered.append((failure.address, bit))
                bits >>= 1
                bit += 1
        return ordered

    def by_address(self) -> Dict[int, List[Failure]]:
        groups: Dict[int, List[Failure]] = {}
        for failure in self.failures:
            groups.setdefault(failure.address, []).append(failure)
        return groups

    def __len__(self) -> int:
        return len(self.failures)

    def __str__(self) -> str:
        lines = [f"fail log of {self.test_name}: {len(self.failures)} event(s)"]
        for failure in self.failures[:20]:
            lines.append(
                f"  op#{failure.op_index}: port {failure.port} addr "
                f"{failure.address} expected {failure.expected:x} observed "
                f"{failure.observed:x}"
            )
        if len(self.failures) > 20:
            lines.append(f"  ... {len(self.failures) - 20} more")
        return "\n".join(lines)
