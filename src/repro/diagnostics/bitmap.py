"""Physical fail bitmaps for process monitoring.

A fail bitmap marks every failing cell on the physical cell grid (the
same near-square folding as :class:`repro.faults.neighborhood.CellGrid`),
which is how foundries correlate BIST fails with defect classes — the
process-monitoring application the paper cites from Schanstra et al.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.diagnostics.faillog import FailLog
from repro.faults.neighborhood import CellGrid


class FailBitmap:
    """Failing-cell bitmap over the physical array.

    Args:
        n_words / width: memory geometry (defines the grid folding).
    """

    def __init__(self, n_words: int, width: int = 1) -> None:
        self.grid = CellGrid(n_words, width)
        self.n_words = n_words
        self.width = width
        self._failing: Set[Tuple[int, int]] = set()

    @classmethod
    def from_log(
        cls, log: FailLog, n_words: int, width: int = 1, scrambler=None
    ) -> "FailBitmap":
        """Build from a fail log; with an
        :class:`repro.memory.scramble.AddressScrambler`, failing logical
        addresses are descrambled so the bitmap shows *silicon*
        positions (what the process engineer correlates with defects)."""
        bitmap = cls(n_words, width)
        for word, bit in log.failing_cells():
            physical = scrambler.physical(word) if scrambler else word
            bitmap.mark(physical, bit)
        return bitmap

    def mark(self, word: int, bit: int) -> None:
        if not 0 <= word < self.n_words or not 0 <= bit < self.width:
            raise IndexError(f"cell ({word},{bit}) outside the array")
        self._failing.add((word, bit))

    @property
    def fail_count(self) -> int:
        return len(self._failing)

    def is_failing(self, word: int, bit: int) -> bool:
        return (word, bit) in self._failing

    def clusters(self) -> List[Set[Tuple[int, int]]]:
        """Connected components of failing cells (grid adjacency).

        Cluster shape separates defect classes: singles point at cell
        defects, full rows/columns at decoder or line defects.
        """
        remaining = set(self._failing)
        clusters: List[Set[Tuple[int, int]]] = []
        while remaining:
            seed = remaining.pop()
            cluster = {seed}
            frontier = [seed]
            while frontier:
                cell = frontier.pop()
                for neighbour in self.grid.neighbours(cell):
                    if neighbour in remaining:
                        remaining.remove(neighbour)
                        cluster.add(neighbour)
                        frontier.append(neighbour)
            clusters.append(cluster)
        return clusters

    def render(self, max_rows: int = 32, max_cols: int = 64) -> str:
        """ASCII rendering: ``X`` failing, ``.`` good (clipped view)."""
        rows = min(self.grid.rows, max_rows)
        cols = min(self.grid.cols, max_cols)
        total = self.n_words * self.width
        lines: List[str] = []
        for row in range(rows):
            chars: List[str] = []
            for col in range(cols):
                index = row * self.grid.cols + col
                if index >= total:
                    chars.append(" ")
                    continue
                cell = self.grid.cell_at(index)
                chars.append("X" if cell in self._failing else ".")
            lines.append("".join(chars))
        return "\n".join(lines)
