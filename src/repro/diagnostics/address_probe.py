"""Address-decoder diagnosis: the walking-address probe.

March signatures cannot reliably separate decoder faults from coupling
(both look like "cells influencing each other"), so decoder diagnosis
uses a dedicated probe, as in fab practice: set the array to the base
value, write the complement to *one* address, and read everything back.

* the written address reads base → its write was lost (AF1 "no cell", or
  the cell is reachable only through another address);
* any *other* address reads the complement → the two addresses share a
  cell (AF2/AF3 aliasing) or the write fanned out (AF4 multi-select).

Walking the probe over all addresses recovers the logical→physical
aliasing graph in O(N²) operations — acceptable for diagnosis, which
runs on a handful of failing parts, not in production flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.memory.sram import Sram


@dataclass(frozen=True)
class AddressFinding:
    """Decoder diagnosis result for one logical address.

    Attributes:
        address: the probed address.
        kind: ``'open'`` (writes lost / reads floating), ``'aliased'``
            (shares cells with other addresses) or ``'multi'`` (write
            fans out to extra addresses while its own readback works).
        partners: other addresses observed to share cells with this one.
    """

    address: int
    kind: str
    partners: Tuple[int, ...] = ()

    def describe(self) -> str:
        if self.kind == "open":
            return f"address {self.address}: selects no cell (AF1-class)"
        partners = ", ".join(str(p) for p in self.partners)
        if self.kind == "multi":
            return (
                f"address {self.address}: write fans out to {{{partners}}} "
                "(AF4-class)"
            )
        return (
            f"address {self.address}: shares a cell with {{{partners}}} "
            "(AF2/AF3-class)"
        )


@dataclass
class DecoderDiagnosis:
    """Outcome of the walking-address probe."""

    findings: List[AddressFinding] = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        return not self.findings

    def by_address(self) -> Dict[int, AddressFinding]:
        return {finding.address: finding for finding in self.findings}

    def __str__(self) -> str:
        if self.is_clean:
            return "decoder probe: clean"
        return "decoder probe:\n" + "\n".join(
            f"  {finding.describe()}" for finding in self.findings
        )


def decoder_probe(memory: Sram, port: int = 0) -> DecoderDiagnosis:
    """Run the walking-address decoder probe through one port.

    The probe uses only functional port accesses (no model peeking), so
    it works on exactly the information a real BIST/tester has.  The
    memory's contents are left in the all-base state afterwards.
    """
    base = 0
    mark = memory.word_mask
    findings: List[AddressFinding] = []
    aliases: Dict[int, Set[int]] = {}
    opens: Set[int] = set()
    fanouts: Dict[int, Set[int]] = {}

    for probe in range(memory.n_words):
        for address in range(memory.n_words):
            memory.write(port, address, base)
        memory.write(port, probe, mark)
        readback = memory.read(port, probe)
        hits = {
            address
            for address in range(memory.n_words)
            if address != probe and memory.read(port, address) == mark
        }
        if readback != mark and not hits:
            opens.add(probe)
        elif readback != mark and hits:
            aliases.setdefault(probe, set()).update(hits)
        elif hits:
            fanouts.setdefault(probe, set()).update(hits)

    # Separate sharing (AF2/AF3) from fan-out (AF4) by symmetry: two
    # addresses mapped to one cell light each other up in *both* probe
    # directions; an AF4 extra target lights up only when the faulty
    # address is probed (probing the extra address writes its own cell,
    # and the faulty address's wired-AND readback stays at base).
    for address in sorted(opens):
        findings.append(AddressFinding(address, "open"))
    for address in sorted(aliases):
        findings.append(
            AddressFinding(address, "aliased", tuple(sorted(aliases[address])))
        )
    for address in sorted(fanouts):
        symmetric = {
            partner
            for partner in fanouts[address]
            if address in fanouts.get(partner, set())
        }
        asymmetric = fanouts[address] - symmetric
        if symmetric:
            findings.append(
                AddressFinding(address, "aliased", tuple(sorted(symmetric)))
            )
        if asymmetric:
            findings.append(
                AddressFinding(address, "multi", tuple(sorted(asymmetric)))
            )
    return DecoderDiagnosis(findings=findings)
