"""Diagnostics on BIST fail logs.

The paper motivates programmable BIST partly by diagnostics and process
monitoring (its refs [3], [9]): the same controller that gives a go/no-go
verdict in production can, with a diagnostic algorithm loaded, stream out
every failing (address, bit, operation) event.  This package consumes
those events:

* :class:`~repro.diagnostics.faillog.FailLog` — ordered capture of
  failures with operation context;
* :class:`~repro.diagnostics.bitmap.FailBitmap` — the physical fail
  bitmap used for process monitoring;
* :mod:`~repro.diagnostics.classifier` — heuristic fault-type
  classification from march failure signatures;
* :mod:`~repro.diagnostics.address_probe` — the walking-address decoder
  probe that separates AF classes from coupling (march signatures alone
  cannot).
"""

from repro.diagnostics.faillog import FailLog
from repro.diagnostics.bitmap import FailBitmap
from repro.diagnostics.classifier import classify, diagnose
from repro.diagnostics.address_probe import DecoderDiagnosis, decoder_probe

__all__ = [
    "DecoderDiagnosis",
    "FailBitmap",
    "FailLog",
    "classify",
    "decoder_probe",
    "diagnose",
]
