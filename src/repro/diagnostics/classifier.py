"""Heuristic fault-type classification from march failure signatures.

A diagnostic BIST run (full fail capture, no early stop) gives, for each
failing cell, the set of reads that mismatched.  Classical march
diagnosis groups defects into behaviourally distinguishable classes —
e.g. a stuck-at-0 and an up-transition fault produce identical March
signatures (the cell never reads back 1), so they form one class.
Labels produced:

``SA0/TF-up``      cell never reads back 1 (fails all expect-1 reads).
``SA1/TF-down``    cell never reads back 0.
``DRF``            fails only reads that follow a retention pause.
``SOF``            fails only the later reads of a multi-read burst
                   (read-disturb; needs a '++'-style diagnostic test).
``CF``             state-dependent: fails a strict subset of the reads
                   of some polarity (an aggressor's state gates it).
``AF/gross``       a large fraction of the address space fails.
``unknown``        anything else.

The classifier needs to know *which* read each failure came from, so it
re-expands the diagnostic algorithm's golden stream and annotates every
read with (element index, position-in-burst, follows-pause) context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.diagnostics.faillog import FailLog
from repro.march.element import MarchElement, Pause
from repro.march.simulator import expand, run_on_memory
from repro.march.test import MarchTest
from repro.march.library import MARCH_C_PLUS_PLUS

#: Fraction of the address space that must fail to call it AF/gross.
GROSS_FAIL_FRACTION = 0.5


@dataclass(frozen=True)
class ReadContext:
    """Context of one read operation within the expanded stream."""

    element_index: int
    expected_polarity: int
    background: int
    burst_position: int  # consecutive-read position within the element ops
    follows_pause: bool

    def expected_bit(self, bit: int) -> int:
        """Expected value of one bit position for this read (the
        background bit XOR the march polarity)."""
        return ((self.background >> bit) & 1) ^ self.expected_polarity


@dataclass(frozen=True)
class Diagnosis:
    """Per-cell classification result.

    Attributes:
        address / bit: the failing cell.
        label: behavioural fault class (see module docstring).
        rationale: one-line human-readable evidence summary.
    """

    address: int
    bit: int
    label: str
    rationale: str


def _annotate_reads(
    test: MarchTest, n_words: int, width: int, ports: int
) -> List[Optional[ReadContext]]:
    """Read context per op index of the golden stream (None for non-reads)."""
    # Build per-element op metadata first.
    element_meta: List[Tuple[int, List[Tuple[int, int]], bool]] = []
    follows_pause = False
    element_index = 0
    per_item: List[Optional[Tuple[int, List[Tuple[int, int]], bool]]] = []
    for item in test.items:
        if isinstance(item, Pause):
            follows_pause = True
            per_item.append(None)
            continue
        reads: List[Tuple[int, int]] = []  # (op position, burst position)
        burst = 0
        meta: List[Tuple[int, int]] = []
        for op in item.ops:
            if op.is_read:
                meta.append((op.polarity, burst))
                burst += 1
            else:
                meta.append((-1, -1))
                burst = 0
        per_item.append((element_index, meta, follows_pause))
        follows_pause = False
        element_index += 1

    contexts: List[Optional[ReadContext]] = []
    for op_meta in _iter_stream_meta(test, per_item, n_words, width, ports):
        contexts.append(op_meta)
    return contexts


def _iter_stream_meta(test, per_item, n_words, width, ports):
    """Mirror the golden expander's loop nest, yielding per-op context."""
    from repro.march.backgrounds import data_backgrounds

    backgrounds = data_backgrounds(width)
    for _port in range(ports):
        for background in backgrounds:
            for item, meta in zip(test.items, per_item):
                if isinstance(item, Pause):
                    yield None  # the delay op
                    continue
                element_index, op_meta, follows_pause = meta
                for _address in range(n_words):
                    for (polarity, burst), op in zip(op_meta, item.ops):
                        if op.is_read:
                            yield ReadContext(
                                element_index=element_index,
                                expected_polarity=polarity,
                                background=background,
                                burst_position=burst,
                                follows_pause=follows_pause,
                            )
                        else:
                            yield None


def classify(
    log: FailLog,
    test: MarchTest,
    n_words: int,
    width: int = 1,
    ports: int = 1,
) -> List[Diagnosis]:
    """Classify every failing cell of a diagnostic run.

    Args:
        log: full fail capture of the run.
        test: the diagnostic algorithm that produced it.
        n_words / width / ports: memory geometry of the run.
    """
    if log.is_clean:
        return []
    contexts = _annotate_reads(test, n_words, width, ports)
    from repro.march.backgrounds import data_backgrounds

    backgrounds = data_backgrounds(width)

    failing_addresses = set(log.failing_addresses())
    gross = len(failing_addresses) >= GROSS_FAIL_FRACTION * n_words

    diagnoses: List[Diagnosis] = []
    for address, bit in log.failing_cells():
        # Reads-per-expected-bit-value one cell at this bit position sees
        # across a full run (backgrounds shift which bit value each march
        # polarity maps to).
        reads_per_value: Dict[int, int] = {0: 0, 1: 0}
        for background in backgrounds:
            background_bit = (background >> bit) & 1
            for item in test.items:
                if isinstance(item, Pause):
                    continue
                for op in item.ops:
                    if op.is_read:
                        reads_per_value[background_bit ^ op.polarity] += ports
        fail_contexts: List[ReadContext] = []
        for failure in log.failures:
            if failure.address != address:
                continue
            if not (failure.failing_bits >> bit) & 1:
                continue
            context = contexts[failure.op_index]
            if context is not None:
                fail_contexts.append(context)
        diagnoses.append(
            _classify_cell(address, bit, fail_contexts, reads_per_value, gross)
        )
    return diagnoses


def _classify_cell(
    address: int,
    bit: int,
    fails: List[ReadContext],
    reads_per_cell: Dict[int, int],
    gross: bool,
) -> Diagnosis:
    if gross:
        return Diagnosis(
            address, bit, "AF/gross",
            "more than half the address space fails",
        )
    if not fails:
        return Diagnosis(address, bit, "unknown", "no annotated read context")
    polarities = {context.expected_bit(bit) for context in fails}
    fails_by_polarity = {
        polarity: sum(1 for c in fails if c.expected_bit(bit) == polarity)
        for polarity in polarities
    }
    all_post_pause = all(context.follows_pause for context in fails)
    deep_burst_fail = any(context.burst_position >= 2 for context in fails)

    if all_post_pause:
        return Diagnosis(
            address, bit, "DRF",
            "fails only reads that follow a retention pause",
        )
    if deep_burst_fail and len(polarities) == 1:
        polarity = next(iter(polarities))
        if fails_by_polarity[polarity] < reads_per_cell.get(polarity, 0):
            # A true stuck-at fails *every* read of that polarity
            # including the first of each burst; failing only once deep
            # reads accumulate is the read-disturb signature.
            return Diagnosis(
                address, bit, "SOF",
                "fails only after repeated reads of one value (read disturb)",
            )
    if polarities == {1}:
        if fails_by_polarity[1] >= reads_per_cell.get(1, 0):
            return Diagnosis(address, bit, "SA0/TF-up", "never reads back 1")
        return Diagnosis(
            address, bit, "CF",
            "fails a strict subset of expect-1 reads (state dependent)",
        )
    if polarities == {0}:
        if fails_by_polarity[0] >= reads_per_cell.get(0, 0):
            return Diagnosis(address, bit, "SA1/TF-down", "never reads back 0")
        return Diagnosis(
            address, bit, "CF",
            "fails a strict subset of expect-0 reads (state dependent)",
        )
    return Diagnosis(
        address, bit, "CF",
        "fails reads of both polarities intermittently",
    )


def diagnose(
    memory,
    test: Optional[MarchTest] = None,
) -> List[Diagnosis]:
    """Convenience wrapper: run a diagnostic algorithm and classify.

    Args:
        memory: an :class:`repro.memory.sram.Sram` (possibly faulty).
        test: diagnostic algorithm; defaults to March C++ (whose pauses
            and triple reads make DRF and SOF distinguishable).
    """
    test = test or MARCH_C_PLUS_PLUS
    memory.reset_state()
    stream = expand(test, memory.n_words, width=memory.width, ports=memory.ports)
    result = run_on_memory(stream, memory)
    log = FailLog(test_name=test.name, failures=result.failures)
    return classify(log, test, memory.n_words, width=memory.width,
                    ports=memory.ports)
