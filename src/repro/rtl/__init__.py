"""Synthesisable-RTL export of the BIST designs.

The paper's controllers are silicon blocks; this package emits them as
Verilog-2001 so a downstream user can drop them into a DFT flow:

* :func:`~repro.rtl.verilog.hardwired_controller_verilog` — a hardwired
  controller's FSM, generated from the *same* state graph the Python
  simulator executes (one case arm per state, conditions on the datapath
  status flags);
* :func:`~repro.rtl.verilog.microcode_rom_verilog` — the microcode
  storage unit as a ROM with its image in ``$readmemh`` format
  (:func:`~repro.rtl.verilog.program_memh`);
* :func:`~repro.rtl.verilog.check_verilog_structure` — a structural
  linter (balanced constructs, declared identifiers) used by the test
  suite; no external simulator is assumed in this environment, so
  behavioural equivalence is carried by construction (the emitter walks
  ``step_signals`` output rows) plus the structural checks;
* :func:`~repro.rtl.readback.rom_readback` /
  :func:`~repro.rtl.readback.verify_rom_image` — decode an exported
  ``$readmemh`` image back to a
  :class:`~repro.core.microcode.assembler.MicrocodeProgram` and check
  the round trip is bit-exact (``repro lint --target rtl``).
"""

from repro.rtl.readback import ReadbackError, rom_readback, verify_rom_image
from repro.rtl.verilog import (
    check_verilog_structure,
    hardwired_controller_verilog,
    lower_fsm_verilog,
    microcode_decoder_verilog,
    microcode_rom_verilog,
    program_memh,
    sop_module_verilog,
)
from repro.rtl.vcd import microcode_trace_vcd, samples_to_vcd

__all__ = [
    "ReadbackError",
    "check_verilog_structure",
    "hardwired_controller_verilog",
    "lower_fsm_verilog",
    "microcode_decoder_verilog",
    "microcode_rom_verilog",
    "microcode_trace_vcd",
    "program_memh",
    "rom_readback",
    "samples_to_vcd",
    "sop_module_verilog",
    "verify_rom_image",
]
