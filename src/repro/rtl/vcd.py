"""VCD (Value Change Dump) export of controller execution traces.

Writes the cycle-accurate traces of the BIST controllers as standard
IEEE 1364 VCD, so a hardware engineer can inspect BIST behaviour in
GTKWave next to real RTL simulations.  The exporter is generic — a list
of per-cycle sample dictionaries plus signal widths — with adapters for
the microcode controller trace.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

#: Printable identifier characters per the VCD grammar.
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifiers(count: int) -> List[str]:
    """Short unique VCD identifiers (!, ", #, ... then two-char codes)."""
    ids: List[str] = []
    index = 0
    while len(ids) < count:
        if index < len(_ID_CHARS):
            ids.append(_ID_CHARS[index])
        else:
            high, low = divmod(index - len(_ID_CHARS), len(_ID_CHARS))
            ids.append(_ID_CHARS[high] + _ID_CHARS[low])
        index += 1
    return ids


def _format_value(value: int, width: int) -> str:
    if width == 1:
        return str(value & 1)
    return "b" + format(value & ((1 << width) - 1), "b") + " "


def samples_to_vcd(
    samples: Sequence[Dict[str, int]],
    widths: Dict[str, int],
    module: str = "bist",
    timescale: str = "1ns",
) -> str:
    """Render per-cycle samples as a VCD document.

    Args:
        samples: one dict per cycle mapping signal name → value; every
            dict must provide every signal in ``widths``.
        widths: signal name → bit width (defines declaration order).
        module: scope name in the VCD hierarchy.
        timescale: VCD timescale declaration.
    """
    names = list(widths)
    ids = dict(zip(names, _identifiers(len(names))))
    lines = [
        "$date repro.rtl.vcd export $end",
        f"$timescale {timescale} $end",
        f"$scope module {module} $end",
    ]
    for name in names:
        width = widths[name]
        lines.append(f"$var wire {width} {ids[name]} {name} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    previous: Dict[str, int] = {}
    for time, sample in enumerate(samples):
        changes = []
        for name in names:
            value = sample[name]
            if previous.get(name) != value:
                identifier = ids[name]
                changes.append(
                    f"{_format_value(value, widths[name])}{identifier}"
                )
                previous[name] = value
        if changes or time == 0:
            lines.append(f"#{time}")
            lines.extend(changes)
    lines.append(f"#{len(samples)}")
    return "\n".join(lines) + "\n"


def microcode_trace_vcd(controller) -> str:
    """VCD of a full microcode-controller run.

    Signals: instruction counter, issued address/port, the data
    background, the repeat bit and the read/write strobes — the view of
    Fig. 1's datapath an engineer would probe in simulation.
    """
    import math

    caps = controller.capabilities
    widths = {
        "ic": max(1, math.ceil(math.log2(max(2, controller.storage.rows)))),
        "address": max(1, math.ceil(math.log2(max(2, caps.n_words)))),
        "port": max(1, math.ceil(math.log2(max(2, caps.ports)))),
        "background": max(1, caps.width),
        "repeat_bit": 1,
        "read_en": 1,
        "write_en": 1,
        "test_end": 1,
    }
    samples: List[Dict[str, int]] = []
    for entry in controller.trace():
        operation = entry.operation
        samples.append(
            {
                "ic": entry.ic,
                "address": entry.address,
                "port": entry.port,
                "background": entry.background,
                "repeat_bit": int(entry.repeat_bit),
                "read_en": int(bool(operation and operation.is_read)),
                "write_en": int(bool(operation and operation.is_write)),
                "test_end": 0,
            }
        )
    if samples:
        samples.append({**samples[-1], "read_en": 0, "write_en": 0,
                        "test_end": 1})
    return samples_to_vcd(samples, widths, module="microcode_bist")


def parse_vcd_changes(text: str) -> List[Tuple[int, str, int]]:
    """Minimal VCD reader: (time, signal name, value) change events.

    Round-trip helper for the test suite; handles exactly the subset
    :func:`samples_to_vcd` emits.
    """
    names: Dict[str, str] = {}
    changes: List[Tuple[int, str, int]] = []
    time = 0
    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("$var"):
            parts = line.split()
            names[parts[3]] = parts[4]
        elif line.startswith("#"):
            time = int(line[1:])
        elif line.startswith("b"):
            value_text, identifier = line[1:].split()
            changes.append((time, names[identifier], int(value_text, 2)))
        elif line and line[0] in "01" and not line.startswith("$"):
            identifier = line[1:]
            if identifier in names:
                changes.append((time, names[identifier], int(line[0])))
    return changes
