"""ROM-image readback: decode a ``$readmemh`` export back to microcode.

The export path (:func:`repro.rtl.verilog.program_memh`) is the last
step before a program leaves the Python models and enters a silicon
flow, so a bug there would survive every other check in the repo.  This
module closes the loop: :func:`rom_readback` parses a memh image back
into a :class:`~repro.core.microcode.assembler.MicrocodeProgram` through
the same 10-bit :meth:`~repro.core.microcode.instruction.MicroInstruction
.decode` the hardware decoder models, and :func:`verify_rom_image`
asserts the round trip is *bit-exact* against the program that was
exported — plus, via the decompiler, that the decoded image still
realises the source march algorithm.

Findings use the ``RT`` rule family (the catalogue lives in
``docs/ANALYSIS.md``):

* ``RT001`` — unparseable image line (not a 3-hex-digit word);
* ``RT002`` — image holds a different instruction count than the
  program (padding rows excluded);
* ``RT003`` — a row decodes to a different instruction than the program
  word it should hold (the bit-exactness check);
* ``RT004`` — the decoded image does not decompile to a march test;
* ``RT005`` — the decompiled test's operation stream differs from the
  source algorithm's.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Location,
    Severity,
)
from repro.core.microcode.assembler import MicrocodeProgram
from repro.core.microcode.decompiler import DecompileError, decompile
from repro.core.microcode.instruction import MicroInstruction
from repro.rtl.verilog import program_memh


class ReadbackError(ValueError):
    """Raised for memh images that cannot be decoded at all."""


def _register_rules() -> None:
    """List the RT family in the shared rule catalogue.

    Readback checks run against a (program, image) pair rather than a
    single analysed artifact, so :func:`verify_rom_image` emits the
    diagnostics directly; these registry entries carry the ids,
    severities and titles for ``repro lint --rules`` and the docs.
    """
    from repro.analysis.rules import rule

    for rule_id, title in (
        ("RT001", "unparseable ROM image row"),
        ("RT002", "image/program instruction count mismatch"),
        ("RT003", "row decodes to a different instruction (bit-exactness)"),
        ("RT004", "decoded image does not decompile"),
        ("RT005", "decompiled test diverges from the source algorithm"),
    ):
        rule(rule_id, Severity.ERROR, title, scope="rtl")(lambda _: iter(()))


_register_rules()


def _parse_words(memh_text: str) -> List[int]:
    """The instruction words of a memh image, in row order."""
    words: List[int] = []
    for line_number, raw in enumerate(memh_text.splitlines(), start=1):
        line = raw.split("//")[0].strip()
        if not line:
            continue
        try:
            word = int(line, 16)
        except ValueError:
            raise ReadbackError(
                f"memh line {line_number}: {raw.strip()!r} is not a "
                f"hexadecimal instruction word"
            ) from None
        words.append(word)
    return words


def rom_readback(memh_text: str, name: str = "readback") -> MicrocodeProgram:
    """Decode a ``$readmemh`` ROM image back into a microcode program.

    Trailing all-zero rows are treated as storage padding (the assembler
    never ends a program with an all-zero word — every program ends in a
    capability-tail row with a condition opcode set), decoded rows pass
    through :meth:`MicroInstruction.decode`, and the source march test
    is recovered with the decompiler.

    Raises:
        ReadbackError: for images with non-hexadecimal rows.
        DecompileError: when the decoded rows are not a program the
            assembler could have produced.
    """
    words = _parse_words(memh_text)
    while words and words[-1] == 0:
        words.pop()
    instructions = [MicroInstruction.decode(word) for word in words]
    source = decompile(instructions, name=name)
    return MicrocodeProgram(name=name, instructions=instructions,
                            source=source)


def verify_rom_image(
    program: MicrocodeProgram,
    memh_text: Optional[str] = None,
    rows: int = 0,
) -> DiagnosticReport:
    """Check that a ROM image decodes back to ``program`` bit-exactly.

    Args:
        program: the verified program that was (or is about to be)
            exported.
        memh_text: the image to check; generated fresh from ``program``
            when omitted (self-check of the export path).
        rows: storage rows used when generating the image.

    Returns:
        A :class:`DiagnosticReport`; empty when the round trip is
        bit-exact and the decoded image still realises the source
        algorithm's operation stream.
    """
    if memh_text is None:
        memh_text = program_memh(program, rows=rows)
    report = DiagnosticReport(name=program.name)

    try:
        words = _parse_words(memh_text)
    except ReadbackError as error:
        report.add(Diagnostic(
            rule="RT001",
            severity=Severity.ERROR,
            message=str(error),
            hint="regenerate the image with program_memh()",
        ))
        return report
    while words and words[-1] == 0:
        words.pop()

    expected = program.instructions
    if len(words) != len(expected):
        report.add(Diagnostic(
            rule="RT002",
            severity=Severity.ERROR,
            message=(
                f"image holds {len(words)} instruction row(s), program "
                f"has {len(expected)}"
            ),
        ))
    for index in range(min(len(words), len(expected))):
        decoded = MicroInstruction.decode(words[index])
        if decoded != expected[index]:
            report.add(Diagnostic(
                rule="RT003",
                severity=Severity.ERROR,
                message=(
                    f"row {index} decodes to {decoded}, program holds "
                    f"{expected[index]} (word {words[index]:#05x} vs "
                    f"{expected[index].encode():#05x})"
                ),
                location=Location(instruction=index),
            ))
    if report.has_errors:
        return report

    try:
        recovered = decompile(
            [MicroInstruction.decode(word) for word in words],
            name=program.name,
        )
    except DecompileError as error:
        report.add(Diagnostic(
            rule="RT004",
            severity=Severity.ERROR,
            message=f"decoded image does not decompile: {error}",
        ))
        return report

    from repro.march.simulator import expand

    n_words, width, ports = 2, 1, 1
    source_stream = list(expand(program.source, n_words, width=width,
                                ports=ports))
    recovered_stream = list(expand(recovered, n_words, width=width,
                                   ports=ports))
    if source_stream != recovered_stream:
        report.add(Diagnostic(
            rule="RT005",
            severity=Severity.ERROR,
            message=(
                f"decompiled test diverges from the source algorithm "
                f"({len(recovered_stream)} vs {len(source_stream)} "
                f"operations on a 2x1 single-port check geometry)"
            ),
        ))
    return report
