"""Classical per-kind fault detection conditions, as data.

Each fault kind of this package has a closed-form *detection condition*
from the march-test literature: a property of the operation sequence a
test applies to the involved cells that is necessary and sufficient for
a failing read.  The static prover (:mod:`repro.analysis.coverage`)
does not pattern-match these conditions — it decides coverage by exact
projected execution — but the conditions remain the *explanation* layer:
the ``CV`` lint rules cite them as hints when a kind is not covered, and
``docs/ANALYSIS.md`` renders this table.

Conditions are stated in march notation with the usual decomposition
into per-cell *test primitives* (state the cell, observe it): ``…`` is
any operation filler, ``⇑``/``⇓`` the address orders, and ``rX`` a read
expecting the cell in state ``X``.  Citations: [vdG] A.J. van de Goor,
*Testing Semiconductor Memories*, Wiley 1991; [ZU] Zarrineh &
Upadhyaya, DATE 1999 (the source paper); [TP] *Test Primitive: A
Straightforward Method To Decouple March* (see ``PAPERS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class DetectionCondition:
    """The textbook detection condition for one fault kind.

    Attributes:
        kind: taxonomy tag matching ``CellFault.kind``.
        name: full fault-model name.
        condition: prose detection condition.
        primitives: decomposition into per-cell read/write test
            primitives, in march notation.
        citation: literature anchor(s).
    """

    kind: str
    name: str
    condition: str
    primitives: str
    citation: str


_C = DetectionCondition

#: Detection conditions per fault kind, keyed by ``CellFault.kind``.
CONDITIONS: Dict[str, DetectionCondition] = {
    c.kind: c
    for c in (
        _C(
            "SAF",
            "stuck-at fault",
            "every cell is read in state 0 and read in state 1",
            "{⇕(…,r0,…)} and {⇕(…,r1,…)} with the matching state "
            "established by an earlier write",
            "[vdG] §4.3; [TP] primitives w0…r0 / w1…r1",
        ),
        _C(
            "TF",
            "transition fault",
            "every cell makes an up-transition that is read before the "
            "next write, and likewise a down-transition",
            "{⇕(…,w1,…,r1,…)} after state 0, and {⇕(…,w0,…,r0,…)} "
            "after state 1",
            "[vdG] §4.4 (condition: w↑ then r before any write)",
        ),
        _C(
            "SOF",
            "stuck-open fault",
            "some cell's stored value is read often enough consecutively "
            "(no intervening write to the cell) for the weak node to "
            "collapse and be observed — with the library's two-disturb "
            "model, three consecutive reads of the weak state",
            "{⇕(…,rX,rX,rX,…)} with the cell holding the weak value X",
            "[vdG] §4.6 (sequential-fault read repetition); [ZU] Table 2",
        ),
        _C(
            "DRF",
            "data-retention fault",
            "each cell holds each state across an idle pause longer than "
            "the decay time, and is read after the pause before any "
            "write",
            "⇕(…,wX,…); Del(T≥decay); ⇕(rX,…) for X in {0,1}",
            "[vdG] §4.9; [ZU] March C+/A+ Hold steps",
        ),
        _C(
            "IRF",
            "incorrect read fault",
            "every cell is read while holding the sensitising state",
            "{⇕(…,rX,…)} with the cell in state X",
            "[vdG] §4.7 (read faults decompose like SAF reads)",
        ),
        _C(
            "RDF",
            "read destructive fault",
            "every cell is read while holding the sensitising state "
            "(the first such read already observes the flip)",
            "{⇕(…,rX,…)} with the cell in state X",
            "[vdG] §4.7",
        ),
        _C(
            "DRDF",
            "deceptive read destructive fault",
            "every cell is read twice in the sensitising state with no "
            "intervening write — the first read flips but observes "
            "correctly, the second observes the flip",
            "{⇕(…,rX,rX,…)}, or rX in one element verified by a read "
            "in the next before any write",
            "[vdG] §4.7; [TP] double-read primitive",
        ),
        _C(
            "CFin",
            "inversion coupling fault",
            "for every (aggressor, victim) pair: the aggressor makes the "
            "triggering transition and the victim is read before any "
            "re-write, for both aggressor-before-victim and "
            "victim-before-aggressor address orders",
            "⇑(…,wa↕,…) / ⇓(…,wa↕,…) with a later {r} on the victim; "
            "both orders needed to catch a<v and a>v",
            "[vdG] §4.5 (march condition for CFs: ⇑ and ⇓ sweeps)",
        ),
        _C(
            "CFid",
            "idempotent coupling fault",
            "for every (aggressor, victim) pair, trigger direction and "
            "forced value: the aggressor transition happens while the "
            "victim holds the complement of the forced value, and the "
            "victim is read before it is re-written — in both address "
            "orders",
            "⇑(rX,…,wa↕) and ⇓(rX,…,wa↕) sweep pairs per forced "
            "value X̄; March C's ⇑(r0,w1);⇑(r1,w0);⇓(r0,w1);⇓(r1,w0) "
            "core is the canonical satisfying decomposition",
            "[vdG] §4.5, Table 4.7; [ZU] Table 2",
        ),
        _C(
            "CFst",
            "state coupling fault",
            "for every pair, aggressor state and forced value: the "
            "victim is read expecting the complement of the forced "
            "value while the aggressor holds the sensitising state",
            "{⇕(…,rX,…)} on the victim with the aggressor parked in "
            "state S, for all four (S, X) combinations",
            "[vdG] §4.5 (CFst needs both neighbour states at read time)",
        ),
        _C(
            "AF",
            "address-decoder fault",
            "some address's reads observe a cell other than the one its "
            "writes initialised (wrong cell, no cell, or a wired-AND of "
            "several) — guaranteed by reading each address in both "
            "states with ⇑(rX,…,wX̄,…) and ⇓(rX,…,wX̄,…) sweeps",
            "⇑(rX,…,wX̄) and ⇓(rX,…,wX̄) (van de Goor's AF condition: "
            "a march with both orders, each starting with a read and "
            "containing a complementing write)",
            "[vdG] §4.2, Theorem: AFs need ⇑(r…w̄) and ⇓(r…w̄)",
        ),
        _C(
            "PNPSF",
            "passive neighbourhood pattern sensitive fault",
            "the base cell fails to make a write transition while the "
            "neighbourhood holds the sensitising pattern, and the base "
            "is read before re-write; data backgrounds must establish "
            "the pattern",
            "write base with neighbourhood = pattern, then {r} on base; "
            "checkerboard backgrounds establish mixed patterns",
            "[vdG] §4.8 (type-1 neighbourhoods); [ZU] §2",
        ),
        _C(
            "ANPSF",
            "active neighbourhood pattern sensitive fault",
            "the trigger neighbour makes its transition while the rest "
            "of the neighbourhood holds the pattern, and the base cell "
            "is read afterwards before being re-written",
            "trigger wa↕ with others = pattern, later {r} on base",
            "[vdG] §4.8; [ZU] §2",
        ),
        _C(
            "PAF",
            "port-access fault",
            "the per-port repetition reads every cell in both states "
            "through every port (a cell disconnected from port P only "
            "fails reads issued on P)",
            "the full {⇕(…,r0,…)}/{⇕(…,r1,…)} condition repeated per "
            "port (the paper's port loop, microcode INC_PORT)",
            "[ZU] §3 (multi-port repetition); [vdG] §4.3 applied "
            "per port",
        ),
        _C(
            "linked",
            "linked (composite) fault",
            "some member fault's detection condition is met at an "
            "observation point where the other members' effects do not "
            "mask the failing read (masking makes linked faults "
            "strictly harder than their members)",
            "member primitives with a non-masked observing read; no "
            "compositional closed form — the prover decides by exact "
            "projected execution over the union support",
            "[vdG] §4.10 (linked faults and masking)",
        ),
    )
}


def condition_for(kind: str) -> Optional[DetectionCondition]:
    """The detection condition for ``kind`` (AF1–AF4 share ``AF``;
    composite kinds like ``CFid&CFid`` share ``linked``)."""
    if kind in CONDITIONS:
        return CONDITIONS[kind]
    if kind.startswith("AF"):
        return CONDITIONS["AF"]
    if "&" in kind or "linked" in kind:
        return CONDITIONS["linked"]
    return None


def condition_table() -> Tuple[DetectionCondition, ...]:
    """All conditions in a stable order (for docs rendering)."""
    return tuple(CONDITIONS[kind] for kind in sorted(CONDITIONS))
