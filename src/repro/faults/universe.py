"""Standard fault universes for coverage experiments.

A *fault universe* is a named, enumerable population of single faults.
:func:`standard_universe` builds the population the coverage benchmark
sweeps: every SAF/TF/SOF/DRF per cell, the four AF classes on a sample of
addresses, and coupling/NPSF faults between physically neighbouring cells
(restricting coupling to neighbours keeps the universe linear in memory
size while still exercising every behavioural mechanism — classical march
coverage proofs are position-independent, so neighbour pairs are
representative of arbitrary pairs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

from repro.faults.address_decoder import (
    AddressMapsNowhere,
    AddressMapsToMultiple,
    AddressMapsToWrongCell,
    TwoAddressesOneCell,
)
from repro.faults.base import CellFault
from repro.faults.coupling import (
    IdempotentCouplingFault,
    InversionCouplingFault,
    StateCouplingFault,
)
from repro.faults.neighborhood import ActiveNpsf, CellGrid, PassiveNpsf
from repro.faults.port import port_fault_universe
from repro.faults.read_faults import read_fault_universe
from repro.faults.retention import DataRetentionFault
from repro.faults.stuck_at import StuckAtFault
from repro.faults.stuck_open import StuckOpenFault
from repro.faults.transition import TransitionFault


@dataclass
class FaultUniverse:
    """A named population of single faults, grouped by taxonomy kind."""

    name: str
    faults: List[CellFault] = field(default_factory=list)

    def __iter__(self) -> Iterator[CellFault]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def by_kind(self) -> Dict[str, List[CellFault]]:
        groups: Dict[str, List[CellFault]] = {}
        for fault in self.faults:
            groups.setdefault(fault.kind, []).append(fault)
        return groups

    def kinds(self) -> List[str]:
        return sorted(self.by_kind())

    def extend(self, faults: Sequence[CellFault]) -> None:
        self.faults.extend(faults)


def _cells(n_words: int, width: int) -> Iterator[tuple]:
    for word in range(n_words):
        for bit in range(width):
            yield word, bit


def stuck_at_universe(n_words: int, width: int = 1) -> List[CellFault]:
    """Both SAF polarities on every cell (2·N·W faults)."""
    return [
        StuckAtFault(word, bit, value)
        for word, bit in _cells(n_words, width)
        for value in (0, 1)
    ]


def transition_universe(n_words: int, width: int = 1) -> List[CellFault]:
    """Both TF directions on every cell."""
    return [
        TransitionFault(word, bit, rising)
        for word, bit in _cells(n_words, width)
        for rising in (True, False)
    ]


def stuck_open_universe(n_words: int, width: int = 1) -> List[CellFault]:
    """Both SOF polarities on every cell."""
    return [
        StuckOpenFault(word, bit, weak_value)
        for word, bit in _cells(n_words, width)
        for weak_value in (0, 1)
    ]


def retention_universe(n_words: int, width: int = 1) -> List[CellFault]:
    """Both DRF decay directions on every cell."""
    return [
        DataRetentionFault(word, bit, from_value)
        for word, bit in _cells(n_words, width)
        for from_value in (0, 1)
    ]


def coupling_universe(n_words: int, width: int = 1) -> List[CellFault]:
    """CFin/CFid/CFst between each cell and its grid neighbours.

    For every ordered (aggressor, victim) neighbour pair: two CFin
    (rising/falling trigger), four CFid (trigger × forced value) and four
    CFst (aggressor state × forced value) faults.
    """
    grid = CellGrid(n_words, width)
    faults: List[CellFault] = []
    for word, bit in _cells(n_words, width):
        for victim in grid.neighbours((word, bit)):
            vw, vb = victim
            for rising in (True, False):
                faults.append(InversionCouplingFault(word, bit, vw, vb, rising))
                for forced in (0, 1):
                    faults.append(
                        IdempotentCouplingFault(word, bit, vw, vb, rising, forced)
                    )
            for state in (0, 1):
                for forced in (0, 1):
                    faults.append(
                        StateCouplingFault(word, bit, vw, vb, state, forced)
                    )
    return faults


def address_fault_universe(n_words: int) -> List[CellFault]:
    """The four AF classes on every address (paired with a fixed partner)."""
    faults: List[CellFault] = []
    for address in range(n_words):
        partner = (address + 1) % n_words
        if partner == address:
            continue
        faults.append(AddressMapsNowhere(address))
        faults.append(AddressMapsToWrongCell(address, partner))
        faults.append(TwoAddressesOneCell(address, partner))
        faults.append(AddressMapsToMultiple(address, partner))
    return faults


def npsf_universe(n_words: int, width: int = 1) -> List[CellFault]:
    """A representative NPSF sample: one PNPSF and two ANPSF per base cell."""
    grid = CellGrid(n_words, width)
    faults: List[CellFault] = []
    for word, bit in _cells(n_words, width):
        neighbours = grid.neighbours((word, bit))
        if not neighbours:
            continue
        pattern = tuple(1 for _ in neighbours)
        faults.append(PassiveNpsf((word, bit), neighbours, pattern))
        trigger = neighbours[0]
        others = neighbours[1:]
        other_pattern = tuple(0 for _ in others)
        for rising in (True, False):
            faults.append(
                ActiveNpsf((word, bit), trigger, rising, others, other_pattern)
            )
    return faults


def standard_universe(
    n_words: int,
    width: int = 1,
    include_npsf: bool = True,
    ports: int = 1,
) -> FaultUniverse:
    """The full standard universe used by the coverage benchmark.

    ``ports > 1`` additionally enumerates the port-access stratum (one
    PAF per cell per port, :func:`repro.faults.port.port_fault_universe`)
    — the defects only per-port test repetition can see.  The default of
    1 preserves the historical single-port population exactly.
    """
    name = (
        f"standard({n_words}x{width})"
        if ports == 1
        else f"standard({n_words}x{width}x{ports})"
    )
    universe = FaultUniverse(name)
    universe.extend(stuck_at_universe(n_words, width))
    universe.extend(transition_universe(n_words, width))
    universe.extend(coupling_universe(n_words, width))
    universe.extend(address_fault_universe(n_words))
    universe.extend(stuck_open_universe(n_words, width))
    universe.extend(retention_universe(n_words, width))
    universe.extend(read_fault_universe(n_words, width))
    if ports > 1:
        universe.extend(port_fault_universe(n_words, width, ports))
    if include_npsf:
        universe.extend(npsf_universe(n_words, width))
    return universe
