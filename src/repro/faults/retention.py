"""Data-retention faults (DRF).

A retention-defective cell (e.g. a broken load resistor in a 4T SRAM
cell) holds one of its logic values only for a limited *decay time*; left
idle longer than that, the value leaks away.  The paper's March C+ /
March A+ variants add ``Hold`` pauses followed by verification sweeps
precisely to expose these defects — no pause-free march test can.

Model: during an idle period (:meth:`on_elapse`) the cell accumulates
decay while it stores ``from_value``; once the accumulated idle time
reaches ``decay_time`` the cell flips.  Reads and writes between pauses
refresh the node, clearing the accumulation (per-access time advance of
1 unit is negligible against the default 500-unit decay time).
"""

from __future__ import annotations

from repro.faults.base import CellFault, bit_of

#: Default decay time; the library's retention pauses (1000 units, see
#: :data:`repro.march.library.RETENTION_PAUSE`) comfortably exceed it.
DEFAULT_DECAY_TIME = 500


class DataRetentionFault(CellFault):
    """Cell ``(word, bit)`` loses ``from_value`` after ``decay_time`` idle.

    Args:
        word: physical word of the leaky cell.
        bit: bit position within the word.
        from_value: the value that decays (1: leaks down; 0: leaks up).
        decay_time: idle units after which the value is lost.
    """

    kind = "DRF"

    def __init__(
        self, word: int, bit: int, from_value: int, decay_time: int = DEFAULT_DECAY_TIME
    ) -> None:
        if from_value not in (0, 1):
            raise ValueError(f"from_value must be 0 or 1, got {from_value!r}")
        if decay_time <= 0:
            raise ValueError("decay time must be positive")
        self.word = word
        self.bit = bit
        self.from_value = from_value
        self.decay_time = decay_time
        self._idle = 0

    def vector_lane(self):
        if type(self) is not DataRetentionFault:
            return None
        return (
            "retention",
            self.word, self.bit, self.from_value, self.decay_time,
        )

    def reset(self) -> None:
        self._idle = 0

    def on_write(self, memory, port: int, word: int, old: int, new: int) -> int:
        if word == self.word:
            self._idle = 0  # access refreshes the node
        return new

    def on_read(self, memory, port: int, word: int, value: int) -> int:
        if word == self.word:
            self._idle = 0
        return value

    def on_elapse(self, memory, duration: int) -> None:
        if bit_of(memory.peek(self.word), self.bit) != self.from_value:
            self._idle = 0
            return
        self._idle += duration
        if self._idle >= self.decay_time:
            memory.force_bit(self.word, self.bit, self.from_value ^ 1)
            self._idle = 0

    def describe(self) -> str:
        return (
            f"DRF: cell ({self.word},{self.bit}) loses {self.from_value} after "
            f"{self.decay_time} idle units"
        )
