"""Transition faults (TF).

A transition fault prevents one cell from making one of its transitions:
an up-transition fault (⟨↑/0⟩) leaves the cell at 0 when 0→1 is written,
a down-transition fault (⟨↓/1⟩) leaves it at 1 when 1→0 is written.  The
classical detection condition is a read of the cell after the failing
transition was attempted, before any further write — which March C's
``^(r0,w1); ^(r1,w0)`` pairs provide for both polarities.
"""

from __future__ import annotations

from repro.faults.base import CellFault, bit_of, with_bit


class TransitionFault(CellFault):
    """Cell ``(word, bit)`` unable to transition ``rising`` or falling.

    Args:
        word: physical word of the faulty cell.
        bit: bit position within the word.
        rising: True for an up-transition (0→1 fails) fault; False for a
            down-transition (1→0 fails) fault.
    """

    kind = "TF"

    def __init__(self, word: int, bit: int, rising: bool) -> None:
        self.word = word
        self.bit = bit
        self.rising = bool(rising)

    def vector_lane(self):
        if type(self) is not TransitionFault:
            return None
        return ("transition", self.word, self.bit, self.rising)

    def on_write(self, memory, port: int, word: int, old: int, new: int) -> int:
        if word != self.word:
            return new
        before = bit_of(old, self.bit)
        after = bit_of(new, self.bit)
        if self.rising and before == 0 and after == 1:
            return with_bit(new, self.bit, 0)  # up transition fails
        if not self.rising and before == 1 and after == 0:
            return with_bit(new, self.bit, 1)  # down transition fails
        return new

    def describe(self) -> str:
        arrow = "0->1" if self.rising else "1->0"
        return f"TF: cell ({self.word},{self.bit}) cannot transition {arrow}"
