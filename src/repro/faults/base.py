"""Base class and hook protocol for cell fault models.

A fault model distorts the behaviour of an :class:`repro.memory.sram.Sram`
through four hooks called from the memory's access paths:

``on_write``
    called for every physical word actually written; may alter the value
    that lands in the cell (stuck-at, transition faults).
``on_read``
    called for every physical word actually read; may alter the observed
    value and/or disturb the stored one (stuck-open read disturb, state
    coupling).
``on_any_write``
    called after *every* completed write anywhere in the array; coupling
    faults watch their aggressor here and flip their victim via
    :meth:`Sram.force_bit`.
``on_elapse``
    called when the memory idles (march pauses); retention faults decay
    here.
``on_cycle_start`` / ``on_cycle_end``
    called only from :meth:`Sram.cycle` around a same-cycle multi-port
    operation group, bracketing the per-access hooks above; faults that
    are sensitised by *simultaneous* accesses (contention PAF,
    cross-port coupling — :mod:`repro.faults.concurrent`) record the
    group's port/word co-access pattern here and consult it from their
    read/write hooks.  The sequential access paths never fire these, so
    such faults are — by construction — transparent to one-port-at-a-
    time stimuli.

``install``/``remove`` let decoder faults rewrite the address map, and
``reset`` clears dynamic state (counters, armed flags) between runs so a
fault universe can be reused.
"""

from __future__ import annotations

import abc


class CellFault(abc.ABC):
    """Abstract behavioural memory fault.

    Subclasses override only the hooks relevant to their mechanism; the
    defaults are transparent (no behavioural change).
    """

    #: Short taxonomy tag ("SAF", "TF", "CFin", ...) used by coverage
    #: reports and the diagnostics classifier.
    kind: str = "?"

    def vector_lane(self):
        """Parameters of this fault's vectorised lane semantics.

        The batch fault-sweep kernel (:mod:`repro.vector`) evaluates one
        golden expansion against many faults at once, one *lane* per
        fault.  A fault that can be expressed as pure lane arithmetic
        returns a ``(stratum, *params)`` tuple here (plain data, no
        numpy — the kernel owns the array code); returning ``None``
        means "no vector semantics" and the kernel falls back to the
        scalar :class:`~repro.memory.sram.Sram` path for this fault,
        reporting the fallback so coverage is never silently lost.

        Implementations must guard against subclassing (``type(self) is
        not ThisClass: return None``): a subclass may override hook
        behaviour the lane model knows nothing about, and the only safe
        default for unknown behaviour is the scalar oracle.
        """
        return None

    def install(self, memory) -> None:
        """One-time installation side effects (decoder rewrites etc.)."""

    def remove(self, memory) -> None:
        """Undo :meth:`install`."""

    def reset(self) -> None:
        """Clear dynamic state between test runs."""

    def on_write(self, memory, port: int, word: int, old: int, new: int) -> int:
        """Filter the value being written into physical ``word``."""
        return new

    def on_read(self, memory, port: int, word: int, value: int) -> int:
        """Filter the value observed when reading physical ``word``."""
        return value

    def on_any_write(self, memory, port: int, word: int, old: int, new: int) -> None:
        """Observe a completed write anywhere in the array."""

    def on_elapse(self, memory, duration: int) -> None:
        """React to idle time (retention decay)."""

    def on_cycle_start(self, memory, group) -> None:
        """Observe a same-cycle multi-port op group before it executes.

        ``group`` is the tuple of per-port operations of one
        :meth:`~repro.memory.sram.Sram.cycle` call, in ascending port
        order.  Any per-cycle state recorded here must be cleared in
        :meth:`on_cycle_end` (and :meth:`reset`): the sequential access
        paths never call these hooks.
        """

    def on_cycle_end(self, memory, group) -> None:
        """Clear per-cycle state after the group committed."""

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line human-readable description for reports."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__}: {self.describe()}>"


def bit_of(value: int, bit: int) -> int:
    """Extract one bit of a word value."""
    return (value >> bit) & 1


def with_bit(value: int, bit: int, bit_value: int) -> int:
    """Return ``value`` with one bit replaced."""
    if bit_value:
        return value | (1 << bit)
    return value & ~(1 << bit)
