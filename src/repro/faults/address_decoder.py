"""Address decoder faults (AF1–AF4).

Decoder faults break the bijection between logical addresses and physical
cells.  They are installed by rewriting the memory's
:class:`repro.memory.decoder.AddressDecoder` mapping rather than through
the per-access hooks, because the defect lives in the decode logic, not
in a cell.  van de Goor shows any march test containing ``^(r?,...,w?̄)``
and ``v(r?,...,w?̄)`` elements (March C qualifies) detects all four
classes.
"""

from __future__ import annotations

from repro.faults.base import CellFault


class AddressMapsNowhere(CellFault):
    """AF1: logical ``address`` selects no cell.

    Writes to the address are lost; reads observe the memory's
    ``open_read_value`` (floating bit lines).
    """

    kind = "AF1"

    def __init__(self, address: int) -> None:
        self.address = address

    def vector_lane(self):
        if type(self) is not AddressMapsNowhere:
            return None
        return ("decoder", self.address, ())

    def install(self, memory) -> None:
        memory.decoder.remap(self.address, ())

    def remove(self, memory) -> None:
        memory.decoder.restore(self.address)

    def describe(self) -> str:
        return f"AF1: address {self.address} selects no cell"


class AddressMapsToWrongCell(CellFault):
    """AF2: logical ``address`` selects ``wrong_word`` instead of its own
    cell, leaving the cell of ``address`` unreachable."""

    kind = "AF2"

    def __init__(self, address: int, wrong_word: int) -> None:
        if address == wrong_word:
            raise ValueError("AF2 needs a genuinely wrong target cell")
        self.address = address
        self.wrong_word = wrong_word

    def vector_lane(self):
        if type(self) is not AddressMapsToWrongCell:
            return None
        return ("decoder", self.address, (self.wrong_word,))

    def install(self, memory) -> None:
        memory.decoder.remap(self.address, (self.wrong_word,))

    def remove(self, memory) -> None:
        memory.decoder.restore(self.address)

    def describe(self) -> str:
        return f"AF2: address {self.address} selects cell {self.wrong_word} instead"


class TwoAddressesOneCell(CellFault):
    """AF3: ``other_address`` additionally selects the cell of
    ``address`` (two addresses, one cell)."""

    kind = "AF3"

    def __init__(self, address: int, other_address: int) -> None:
        if address == other_address:
            raise ValueError("AF3 needs two distinct addresses")
        self.address = address
        self.other_address = other_address

    def vector_lane(self):
        if type(self) is not TwoAddressesOneCell:
            return None
        return ("decoder", self.other_address, (self.address,))

    def install(self, memory) -> None:
        memory.decoder.remap(self.other_address, (self.address,))

    def remove(self, memory) -> None:
        memory.decoder.restore(self.other_address)

    def describe(self) -> str:
        return (
            f"AF3: addresses {self.address} and {self.other_address} both select "
            f"cell {self.address}"
        )


class AddressMapsToMultiple(CellFault):
    """AF4: logical ``address`` selects its own cell *and* ``extra_word``.

    Reads observe the wired-AND of both cells; writes land in both.
    """

    kind = "AF4"

    def __init__(self, address: int, extra_word: int) -> None:
        if address == extra_word:
            raise ValueError("AF4 needs a distinct extra cell")
        self.address = address
        self.extra_word = extra_word

    def vector_lane(self):
        if type(self) is not AddressMapsToMultiple:
            return None
        return ("decoder", self.address, (self.address, self.extra_word))

    def install(self, memory) -> None:
        memory.decoder.remap(self.address, (self.address, self.extra_word))

    def remove(self, memory) -> None:
        memory.decoder.restore(self.address)

    def describe(self) -> str:
        return f"AF4: address {self.address} also selects cell {self.extra_word}"
