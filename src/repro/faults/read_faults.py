"""Static read faults: IRF, RDF and DRDF.

The fault-model generation that followed the paper (Adams & Cooley 1996,
van de Goor & Al-Ars 2000) added faults sensitised by the read operation
itself:

* **IRF** — incorrect read fault: reading the cell in state ``v``
  returns the complement while the cell keeps its value;
* **RDF** — read destructive fault: the read flips the cell *and*
  returns the flipped (wrong) value;
* **DRDF** — deceptive read destructive fault: the read flips the cell
  but returns the *correct* old value — the read that lies.

IRF and RDF are caught by any read expecting the sensitising state.
DRDF is the interesting one: only a **second read** (with no intervening
write) observes the damage, which gives the paper's triple-read '++'
variants a second justification beyond stuck-open cells, and is exactly
what the March SS / March RAW generation of algorithms was designed for.
"""

from __future__ import annotations

from repro.faults.base import CellFault, bit_of, with_bit


class _ReadSensitised(CellFault):
    """Shared base: fires when the cell is read holding ``state``."""

    def __init__(self, word: int, bit: int, state: int) -> None:
        if state not in (0, 1):
            raise ValueError(f"sensitising state must be 0 or 1, got {state!r}")
        self.word = word
        self.bit = bit
        self.state = state

    def _fires(self, word: int, value: int) -> bool:
        return word == self.word and bit_of(value, self.bit) == self.state


class IncorrectReadFault(_ReadSensitised):
    """IRF: reads of state ``state`` return the complement; the cell is
    untouched."""

    kind = "IRF"

    def vector_lane(self):
        if type(self) is not IncorrectReadFault:
            return None
        return ("read_incorrect", self.word, self.bit, self.state)

    def on_read(self, memory, port: int, word: int, value: int) -> int:
        if self._fires(word, value):
            return with_bit(value, self.bit, self.state ^ 1)
        return value

    def describe(self) -> str:
        return (
            f"IRF: cell ({self.word},{self.bit}) reads {self.state ^ 1} "
            f"while holding {self.state}"
        )


class ReadDestructiveFault(_ReadSensitised):
    """RDF: reads of state ``state`` flip the cell and return the
    flipped value."""

    kind = "RDF"

    def vector_lane(self):
        if type(self) is not ReadDestructiveFault:
            return None
        return ("read_destructive", self.word, self.bit, self.state)

    def on_read(self, memory, port: int, word: int, value: int) -> int:
        if self._fires(word, value):
            memory.force_bit(self.word, self.bit, self.state ^ 1)
            return with_bit(value, self.bit, self.state ^ 1)
        return value

    def describe(self) -> str:
        return (
            f"RDF: reading cell ({self.word},{self.bit}) in state "
            f"{self.state} flips it (and returns the flipped value)"
        )


class DeceptiveReadDestructiveFault(_ReadSensitised):
    """DRDF: reads of state ``state`` flip the cell but return the
    correct old value — only a follow-up read sees the damage."""

    kind = "DRDF"

    def vector_lane(self):
        if type(self) is not DeceptiveReadDestructiveFault:
            return None
        return ("read_deceptive", self.word, self.bit, self.state)

    def on_read(self, memory, port: int, word: int, value: int) -> int:
        if self._fires(word, value):
            memory.force_bit(self.word, self.bit, self.state ^ 1)
            # The sense amplifier already latched the pre-flip value.
        return value

    def describe(self) -> str:
        return (
            f"DRDF: reading cell ({self.word},{self.bit}) in state "
            f"{self.state} flips it but returns {self.state}"
        )


def read_fault_universe(n_words: int, width: int = 1):
    """All IRF/RDF/DRDF instances (2 states × 3 kinds per cell)."""
    faults = []
    for word in range(n_words):
        for bit in range(width):
            for state in (0, 1):
                faults.append(IncorrectReadFault(word, bit, state))
                faults.append(ReadDestructiveFault(word, bit, state))
                faults.append(DeceptiveReadDestructiveFault(word, bit, state))
    return faults
