"""Functional memory fault models (van de Goor taxonomy).

The march algorithms realised by the paper's BIST controllers target the
classical functional fault models; this package implements each as a
behavioural distortion plugged into :class:`repro.memory.sram.Sram`:

* :class:`~repro.faults.stuck_at.StuckAtFault` — SAF, cell stuck at 0/1.
* :class:`~repro.faults.transition.TransitionFault` — TF, cell cannot
  make an up (or down) transition.
* :mod:`~repro.faults.coupling` — CFin / CFid / CFst two-cell coupling.
* :mod:`~repro.faults.address_decoder` — AF1–AF4 decoder faults.
* :class:`~repro.faults.stuck_open.StuckOpenFault` — SOF / disconnected
  pull-up: repeated reads disturb the cell (the defect March C++ / A++
  triple reads.
* :class:`~repro.faults.retention.DataRetentionFault` — DRF, cell decays
  after an idle period (detected by the '+' variants' pauses).
* :mod:`~repro.faults.read_faults` — the static read faults IRF / RDF /
  DRDF; the deceptive DRDF needs back-to-back reads (the '++' triple
  reads or PMOVI's read-after-write structure).
* :class:`~repro.faults.neighborhood.PassiveNpsf` /
  :class:`~repro.faults.neighborhood.ActiveNpsf` — neighbourhood pattern
  sensitive faults (march tests only partially cover these; kept in the
  universe to show that boundary).

:mod:`~repro.faults.universe` enumerates standard fault universes for
coverage experiments and :mod:`~repro.faults.injector` manages injecting
one fault at a time into a memory.
"""

from repro.faults.base import CellFault
from repro.faults.concurrent import (
    ConcurrentPortAccessFault,
    CrossPortCouplingFault,
    concurrent_fault_universe,
)
from repro.faults.stuck_at import StuckAtFault
from repro.faults.transition import TransitionFault
from repro.faults.coupling import (
    IdempotentCouplingFault,
    InversionCouplingFault,
    StateCouplingFault,
)
from repro.faults.address_decoder import (
    AddressMapsNowhere,
    AddressMapsToMultiple,
    AddressMapsToWrongCell,
    TwoAddressesOneCell,
)
from repro.faults.stuck_open import StuckOpenFault
from repro.faults.retention import DataRetentionFault
from repro.faults.neighborhood import ActiveNpsf, PassiveNpsf
from repro.faults.read_faults import (
    DeceptiveReadDestructiveFault,
    IncorrectReadFault,
    ReadDestructiveFault,
)
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultSpecError, format_fault, parse_fault
from repro.faults.universe import FaultUniverse, standard_universe

__all__ = [
    "ActiveNpsf",
    "AddressMapsNowhere",
    "AddressMapsToMultiple",
    "AddressMapsToWrongCell",
    "CellFault",
    "ConcurrentPortAccessFault",
    "CrossPortCouplingFault",
    "DataRetentionFault",
    "DeceptiveReadDestructiveFault",
    "FaultInjector",
    "FaultSpecError",
    "FaultUniverse",
    "IdempotentCouplingFault",
    "IncorrectReadFault",
    "InversionCouplingFault",
    "PassiveNpsf",
    "ReadDestructiveFault",
    "StateCouplingFault",
    "StuckAtFault",
    "StuckOpenFault",
    "TransitionFault",
    "TwoAddressesOneCell",
    "concurrent_fault_universe",
    "format_fault",
    "parse_fault",
    "standard_universe",
]
