"""Two-cell coupling faults (CFin, CFid, CFst).

Coupling faults involve an *aggressor* cell whose activity disturbs a
distinct *victim* cell:

* **Inversion coupling (CFin)** — a given transition of the aggressor
  inverts the victim.
* **Idempotent coupling (CFid)** — a given transition of the aggressor
  forces the victim to a fixed value.
* **State coupling (CFst)** — the victim is forced to a fixed value
  whenever the aggressor *is in* a given state (observed at read time).

March C detects all unlinked CFin/CFid/CFst between any two cells; the
shorter MATS-family tests do not, which the coverage experiments
demonstrate.
"""

from __future__ import annotations

from repro.faults.base import CellFault, bit_of, with_bit


class _TransitionTriggered(CellFault):
    """Shared machinery: watch an aggressor transition via on_any_write."""

    def __init__(
        self,
        aggressor_word: int,
        aggressor_bit: int,
        victim_word: int,
        victim_bit: int,
        rising: bool,
    ) -> None:
        if (aggressor_word, aggressor_bit) == (victim_word, victim_bit):
            raise ValueError("coupling fault needs distinct aggressor and victim")
        self.aggressor_word = aggressor_word
        self.aggressor_bit = aggressor_bit
        self.victim_word = victim_word
        self.victim_bit = victim_bit
        self.rising = bool(rising)

    def _triggered(self, word: int, old: int, new: int) -> bool:
        if word != self.aggressor_word:
            return False
        before = bit_of(old, self.aggressor_bit)
        after = bit_of(new, self.aggressor_bit)
        if self.rising:
            return before == 0 and after == 1
        return before == 1 and after == 0

    def _arrow(self) -> str:
        return "0->1" if self.rising else "1->0"


class InversionCouplingFault(_TransitionTriggered):
    """CFin: aggressor transition inverts the victim cell."""

    kind = "CFin"

    def vector_lane(self):
        if type(self) is not InversionCouplingFault:
            return None
        return (
            "coupling_inversion",
            self.aggressor_word, self.aggressor_bit,
            self.victim_word, self.victim_bit, self.rising,
        )

    def on_any_write(self, memory, port: int, word: int, old: int, new: int) -> None:
        if self._triggered(word, old, new):
            current = bit_of(memory.peek(self.victim_word), self.victim_bit)
            memory.force_bit(self.victim_word, self.victim_bit, current ^ 1)

    def describe(self) -> str:
        return (
            f"CFin: ({self.aggressor_word},{self.aggressor_bit}) {self._arrow()} "
            f"inverts ({self.victim_word},{self.victim_bit})"
        )


class IdempotentCouplingFault(_TransitionTriggered):
    """CFid: aggressor transition forces the victim to ``forced_value``."""

    kind = "CFid"

    def __init__(
        self,
        aggressor_word: int,
        aggressor_bit: int,
        victim_word: int,
        victim_bit: int,
        rising: bool,
        forced_value: int,
    ) -> None:
        super().__init__(aggressor_word, aggressor_bit, victim_word, victim_bit, rising)
        if forced_value not in (0, 1):
            raise ValueError(f"forced value must be 0 or 1, got {forced_value!r}")
        self.forced_value = forced_value

    def vector_lane(self):
        if type(self) is not IdempotentCouplingFault:
            return None
        return (
            "coupling_idempotent",
            self.aggressor_word, self.aggressor_bit,
            self.victim_word, self.victim_bit,
            self.rising, self.forced_value,
        )

    def on_any_write(self, memory, port: int, word: int, old: int, new: int) -> None:
        if self._triggered(word, old, new):
            memory.force_bit(self.victim_word, self.victim_bit, self.forced_value)

    def describe(self) -> str:
        return (
            f"CFid: ({self.aggressor_word},{self.aggressor_bit}) {self._arrow()} "
            f"forces ({self.victim_word},{self.victim_bit}) to {self.forced_value}"
        )


class StateCouplingFault(CellFault):
    """CFst: victim observed as ``forced_value`` while aggressor holds
    ``aggressor_state``.

    Modelled at read time: the bridge only distorts the victim's bit line
    while the aggressor's node is at the coupling state, so the stored
    value recovers once the aggressor changes.
    """

    kind = "CFst"

    def __init__(
        self,
        aggressor_word: int,
        aggressor_bit: int,
        victim_word: int,
        victim_bit: int,
        aggressor_state: int,
        forced_value: int,
    ) -> None:
        if (aggressor_word, aggressor_bit) == (victim_word, victim_bit):
            raise ValueError("coupling fault needs distinct aggressor and victim")
        if aggressor_state not in (0, 1) or forced_value not in (0, 1):
            raise ValueError("aggressor_state and forced_value must be 0 or 1")
        self.aggressor_word = aggressor_word
        self.aggressor_bit = aggressor_bit
        self.victim_word = victim_word
        self.victim_bit = victim_bit
        self.aggressor_state = aggressor_state
        self.forced_value = forced_value

    def vector_lane(self):
        if type(self) is not StateCouplingFault:
            return None
        return (
            "coupling_state",
            self.aggressor_word, self.aggressor_bit,
            self.victim_word, self.victim_bit,
            self.aggressor_state, self.forced_value,
        )

    def on_read(self, memory, port: int, word: int, value: int) -> int:
        if word != self.victim_word:
            return value
        aggressor = bit_of(memory.peek(self.aggressor_word), self.aggressor_bit)
        if aggressor == self.aggressor_state:
            return with_bit(value, self.victim_bit, self.forced_value)
        return value

    def describe(self) -> str:
        return (
            f"CFst: ({self.victim_word},{self.victim_bit}) reads {self.forced_value} "
            f"while ({self.aggressor_word},{self.aggressor_bit})={self.aggressor_state}"
        )
