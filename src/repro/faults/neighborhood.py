"""Neighbourhood pattern sensitive faults (NPSF).

NPSFs involve a *base* cell whose behaviour depends on the pattern held
by its physical neighbourhood (the four orthogonally adjacent cells in
the cell array, the "type-1" neighbourhood).  They require dedicated
tests; march algorithms detect only a fraction — the coverage benchmark
includes NPSFs precisely to show that boundary, mirroring the paper's
remark that enhanced fault models demand enhanced (and larger) hardwired
controllers.

Physical layout: the library arranges the ``n_words × width`` cell array
on a near-square grid in row-major bit order (the
:class:`CellGrid` helper), matching the usual folded-array floorplan
assumption of the NPSF literature.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.faults.base import CellFault, bit_of

Cell = Tuple[int, int]  # (word, bit)


class CellGrid:
    """Near-square physical arrangement of all cells of a memory.

    Cells are numbered linearly as ``word * width + bit`` and folded into
    ``rows × cols`` with ``cols = 2**ceil(log2(sqrt(total)))``.
    """

    def __init__(self, n_words: int, width: int) -> None:
        self.n_words = n_words
        self.width = width
        total = n_words * width
        self.cols = max(1, 2 ** math.ceil(math.log2(math.sqrt(total))) if total > 1 else 1)
        self.rows = math.ceil(total / self.cols)

    def linear(self, cell: Cell) -> int:
        word, bit = cell
        return word * self.width + bit

    def cell_at(self, index: int) -> Cell:
        return divmod(index, self.width)

    def position(self, cell: Cell) -> Tuple[int, int]:
        return divmod(self.linear(cell), self.cols)

    def neighbours(self, cell: Cell) -> List[Cell]:
        """North, east, south, west neighbours that exist on the grid."""
        row, col = self.position(cell)
        total = self.n_words * self.width
        result = []
        for drow, dcol in ((-1, 0), (0, 1), (1, 0), (0, -1)):
            nrow, ncol = row + drow, col + dcol
            if nrow < 0 or ncol < 0 or ncol >= self.cols:
                continue
            index = nrow * self.cols + ncol
            if index < total:
                result.append(self.cell_at(index))
        return result


def _neighbour_values(memory, cells: List[Cell]) -> Tuple[int, ...]:
    return tuple(bit_of(memory.peek(word), bit) for word, bit in cells)


class PassiveNpsf(CellFault):
    """PNPSF: the base cell cannot change while the neighbourhood holds
    ``pattern``.

    Args:
        base: the victim cell ``(word, bit)``.
        neighbours: the deleted-neighbourhood cells, in a fixed order.
        pattern: per-neighbour values that freeze the base cell.
    """

    kind = "PNPSF"

    def __init__(
        self, base: Cell, neighbours: List[Cell], pattern: Tuple[int, ...]
    ) -> None:
        if len(neighbours) != len(pattern):
            raise ValueError("pattern length must match neighbour count")
        if not neighbours:
            raise ValueError("NPSF needs at least one neighbour cell")
        self.base = base
        self.neighbour_cells = list(neighbours)
        self.pattern = tuple(pattern)

    def on_write(self, memory, port: int, word: int, old: int, new: int) -> int:
        base_word, base_bit = self.base
        if word != base_word:
            return new
        if _neighbour_values(memory, self.neighbour_cells) == self.pattern:
            # Base cell frozen: keep its old bit value.
            frozen = bit_of(old, base_bit)
            return (new & ~(1 << base_bit)) | (frozen << base_bit)
        return new

    def describe(self) -> str:
        return (
            f"PNPSF: cell {self.base} frozen while neighbours "
            f"{self.neighbour_cells} hold {self.pattern}"
        )


class ActiveNpsf(CellFault):
    """ANPSF: a transition of one neighbour, with the remaining
    neighbours holding ``pattern``, flips the base cell.

    Args:
        base: the victim cell.
        trigger: the neighbour whose transition activates the fault.
        rising: trigger transition direction.
        others: the remaining neighbourhood cells.
        pattern: values the remaining cells must hold for the flip.
    """

    kind = "ANPSF"

    def __init__(
        self,
        base: Cell,
        trigger: Cell,
        rising: bool,
        others: Optional[List[Cell]] = None,
        pattern: Tuple[int, ...] = (),
    ) -> None:
        others = others or []
        if len(others) != len(pattern):
            raise ValueError("pattern length must match other-neighbour count")
        self.base = base
        self.trigger = trigger
        self.rising = bool(rising)
        self.others = list(others)
        self.pattern = tuple(pattern)

    def on_any_write(self, memory, port: int, word: int, old: int, new: int) -> None:
        trig_word, trig_bit = self.trigger
        if word != trig_word:
            return
        before, after = bit_of(old, trig_bit), bit_of(new, trig_bit)
        fired = (before, after) == ((0, 1) if self.rising else (1, 0))
        if not fired:
            return
        if self.others and _neighbour_values(memory, self.others) != self.pattern:
            return
        base_word, base_bit = self.base
        current = bit_of(memory.peek(base_word), base_bit)
        memory.force_bit(base_word, base_bit, current ^ 1)

    def describe(self) -> str:
        arrow = "0->1" if self.rising else "1->0"
        return f"ANPSF: {self.trigger} {arrow} flips base cell {self.base}"
