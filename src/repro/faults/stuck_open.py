"""Stuck-open / disconnected pull-up faults (SOF).

The paper's March C++ / A++ variants replace every read by *three* reads
"to excite and detect disconnected pull-up/down devices in the memory
cells".  The mechanism: a cell with a broken pull-up (pull-down) keeps
its state only dynamically; every read of the affected value disturbs the
weakly held node, and after a small number of consecutive reads the cell
flips.  A single read therefore still returns the correct value, but the
third of three back-to-back reads observes the flip — which is exactly
why the '++' algorithms triple their reads and why the plain algorithms
miss the defect.

Model: reading the cell while it stores ``weak_value`` increments a
disturb counter; once the counter reaches ``disturb_threshold`` the cell
flips (subsequent reads observe the complement).  Any write to the cell
restores the node and resets the counter.
"""

from __future__ import annotations

from repro.faults.base import CellFault, bit_of


class StuckOpenFault(CellFault):
    """Disconnected pull-up/down at cell ``(word, bit)``.

    Args:
        word: physical word of the weak cell.
        bit: bit position within the word.
        weak_value: the state held only dynamically (1 for a broken
            pull-up, 0 for a broken pull-down).
        disturb_threshold: consecutive reads of ``weak_value`` after
            which the cell flips.  The default of 2 makes the defect
            invisible to single- and double-read march elements but
            detected by the paper's triple reads.
    """

    kind = "SOF"

    def __init__(
        self, word: int, bit: int, weak_value: int, disturb_threshold: int = 2
    ) -> None:
        if weak_value not in (0, 1):
            raise ValueError(f"weak value must be 0 or 1, got {weak_value!r}")
        if disturb_threshold < 1:
            raise ValueError("disturb threshold must be at least 1")
        self.word = word
        self.bit = bit
        self.weak_value = weak_value
        self.disturb_threshold = disturb_threshold
        self._disturbs = 0

    def vector_lane(self):
        if type(self) is not StuckOpenFault:
            return None
        return (
            "stuck_open",
            self.word, self.bit, self.weak_value, self.disturb_threshold,
        )

    def reset(self) -> None:
        self._disturbs = 0

    def on_write(self, memory, port: int, word: int, old: int, new: int) -> int:
        if word == self.word:
            self._disturbs = 0  # write restores the weak node
        return new

    def on_read(self, memory, port: int, word: int, value: int) -> int:
        if word != self.word:
            return value
        if bit_of(value, self.bit) != self.weak_value:
            return value
        self._disturbs += 1
        if self._disturbs >= self.disturb_threshold:
            # The weakly held node collapses: flip the stored cell so the
            # *next* read observes the complement.  The current read
            # still returns the pre-collapse value (charge sharing decays
            # after the sense amplifier fired).
            memory.force_bit(self.word, self.bit, self.weak_value ^ 1)
            self._disturbs = 0
        return value

    def describe(self) -> str:
        device = "pull-up" if self.weak_value == 1 else "pull-down"
        return (
            f"SOF: cell ({self.word},{self.bit}) disconnected {device} "
            f"(flips after {self.disturb_threshold} reads of {self.weak_value})"
        )
