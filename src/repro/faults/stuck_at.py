"""Stuck-at faults (SAF).

A stuck-at fault ties one memory cell permanently to logic 0 or 1: writes
of the opposite value are lost and reads always observe the stuck value.
Any march test that reads each cell expecting both values (i.e. contains
an ``r0`` and an ``r1`` reaching every cell) detects all SAFs.
"""

from __future__ import annotations

from repro.faults.base import CellFault, with_bit


class StuckAtFault(CellFault):
    """Cell ``(word, bit)`` stuck at ``value``.

    Args:
        word: physical word index of the faulty cell.
        bit: bit position within the word (0 for bit-oriented memories).
        value: the stuck logic value, 0 or 1.
    """

    kind = "SAF"

    def __init__(self, word: int, bit: int, value: int) -> None:
        if value not in (0, 1):
            raise ValueError(f"stuck value must be 0 or 1, got {value!r}")
        self.word = word
        self.bit = bit
        self.value = value

    def vector_lane(self):
        if type(self) is not StuckAtFault:
            return None
        return ("stuck_at", self.word, self.bit, self.value)

    def install(self, memory) -> None:
        # The defect holds the node at the stuck level from power-on.
        memory.force_bit(self.word, self.bit, self.value)

    def on_write(self, memory, port: int, word: int, old: int, new: int) -> int:
        if word != self.word:
            return new
        return with_bit(new, self.bit, self.value)

    def on_read(self, memory, port: int, word: int, value: int) -> int:
        if word != self.word:
            return value
        return with_bit(value, self.bit, self.value)

    def describe(self) -> str:
        return f"SAF: cell ({self.word},{self.bit}) stuck-at-{self.value}"
