"""Port-restricted faults for multiport memories.

Multiport SRAM cells have one access-transistor pair (and word/bit-line
set) *per port*; a defect there breaks accesses through one port while
the cell remains perfectly healthy through the others.  These are the
faults that justify the paper's per-port repetition of the whole test
algorithm (the microcode ``Inc. Port`` instruction, the FSM controller's
path B): a single-port pass cannot see them.

:class:`PortRestrictedFault` is a decorator fault — it wraps any
:class:`~repro.faults.base.CellFault` and gates its read/write hooks on
the accessing port.  :class:`PortStuckOpenAccess` models the most common
multiport defect directly: an open access device that makes one port's
reads of a cell float and its writes fail.
"""

from __future__ import annotations

from repro.faults.base import CellFault, with_bit


class PortRestrictedFault(CellFault):
    """A cell fault active only when accessed through one port.

    The wrapped fault's write/read hooks fire only for accesses through
    ``port``; its passive hooks (``on_any_write`` for coupling triggers,
    ``on_elapse`` for retention) remain port-independent because they
    model cell-internal mechanisms, not access paths.

    Args:
        port: the defective port's index.
        fault: the underlying cell fault.
    """

    def __init__(self, port: int, fault: CellFault) -> None:
        if port < 0:
            raise ValueError(f"port index must be non-negative, got {port}")
        self.port = port
        self.fault = fault
        self.kind = f"{fault.kind}@p{port}"

    def install(self, memory) -> None:
        if self.port >= memory.ports:
            raise ValueError(
                f"memory has {memory.ports} port(s); no port {self.port}"
            )
        # The wrapped fault's install side effects (e.g. forcing a stuck
        # level) are cell-internal only for genuinely cell-level faults;
        # port-restricted defects live in the access path, so we skip
        # them and rely purely on the access hooks.

    def reset(self) -> None:
        self.fault.reset()

    def on_write(self, memory, port: int, word: int, old: int, new: int) -> int:
        if port != self.port:
            return new
        return self.fault.on_write(memory, port, word, old, new)

    def on_read(self, memory, port: int, word: int, value: int) -> int:
        if port != self.port:
            return value
        return self.fault.on_read(memory, port, word, value)

    def on_any_write(self, memory, port: int, word: int, old: int, new: int) -> None:
        self.fault.on_any_write(memory, port, word, old, new)

    def on_elapse(self, memory, duration: int) -> None:
        self.fault.on_elapse(memory, duration)

    def on_cycle_start(self, memory, group) -> None:
        self.fault.on_cycle_start(memory, group)

    def on_cycle_end(self, memory, group) -> None:
        self.fault.on_cycle_end(memory, group)

    def describe(self) -> str:
        return f"port {self.port} only: {self.fault.describe()}"


class PortStuckOpenAccess(CellFault):
    """Open access device between cell ``(word, bit)`` and one port.

    Writes through the defective port do not reach the cell bit; reads
    through it observe the floating bit line (``open_value``).  All
    other ports behave normally — the canonical defect that per-port
    test repetition exists to catch.

    Args:
        port: the defective port.
        word / bit: the disconnected cell.
        open_value: value a floating read observes (0 models a
            pulled-down bit line).
    """

    kind = "PAF"

    def __init__(self, port: int, word: int, bit: int, open_value: int = 0) -> None:
        if open_value not in (0, 1):
            raise ValueError(f"open value must be 0 or 1, got {open_value!r}")
        self.port = port
        self.word = word
        self.bit = bit
        self.open_value = open_value

    def vector_lane(self):
        if type(self) is not PortStuckOpenAccess:
            return None
        return (
            "port_open", self.port, self.word, self.bit, self.open_value,
        )

    def install(self, memory) -> None:
        if self.port >= memory.ports:
            raise ValueError(
                f"memory has {memory.ports} port(s); no port {self.port}"
            )

    def on_write(self, memory, port: int, word: int, old: int, new: int) -> int:
        if port != self.port or word != self.word:
            return new
        # The write does not reach the cell bit: keep the old value.
        return with_bit(new, self.bit, (old >> self.bit) & 1)

    def on_read(self, memory, port: int, word: int, value: int) -> int:
        if port != self.port or word != self.word:
            return value
        return with_bit(value, self.bit, self.open_value)

    def describe(self) -> str:
        return (
            f"PAF: cell ({self.word},{self.bit}) disconnected from port "
            f"{self.port} (floating reads = {self.open_value})"
        )


def port_fault_universe(n_words: int, width: int, ports: int):
    """All single-port access faults (one PAF per cell per port)."""
    return [
        PortStuckOpenAccess(port, word, bit)
        for port in range(ports)
        for word in range(n_words)
        for bit in range(width)
    ]
