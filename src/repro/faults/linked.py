"""Linked faults: multiple simple faults that mask each other.

A *linked* fault is a set of simple faults sharing a victim cell whose
effects can cancel before any read observes them — the classical example
is two idempotent coupling faults ⟨a1↑; v:=x⟩ and ⟨a2↑; v:=x̄⟩: a march
element that toggles both aggressors in sequence flips the victim twice,
and the following read sees nothing.  Unlinked-fault tests (March C)
provably miss some of these; March LR (van de Goor & Gaydadjiev, 1996)
was designed to detect the realistic linked combinations, and the X8
benchmark measures exactly that gap.

:class:`CompositeFault` makes a set of simple faults injectable as one
unit through the single-fault machinery (the *set* is the fault).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.faults.base import CellFault
from repro.faults.coupling import IdempotentCouplingFault


class CompositeFault(CellFault):
    """Several simple faults present simultaneously, injected as one.

    Hook calls fan out to every member in order; ``kind`` joins the
    member kinds (e.g. ``"CFid&CFid"``).
    """

    def __init__(self, faults: Sequence[CellFault], kind: str = "") -> None:
        if len(faults) < 2:
            raise ValueError("a composite fault needs at least two members")
        self.faults = list(faults)
        self.kind = kind or "&".join(fault.kind for fault in self.faults)

    def install(self, memory) -> None:
        for fault in self.faults:
            fault.install(memory)

    def remove(self, memory) -> None:
        for fault in self.faults:
            fault.remove(memory)

    def reset(self) -> None:
        for fault in self.faults:
            fault.reset()

    def on_write(self, memory, port, word, old, new):
        for fault in self.faults:
            new = fault.on_write(memory, port, word, old, new)
        return new

    def on_read(self, memory, port, word, value):
        for fault in self.faults:
            value = fault.on_read(memory, port, word, value)
        return value

    def on_any_write(self, memory, port, word, old, new) -> None:
        for fault in self.faults:
            fault.on_any_write(memory, port, word, old, new)

    def on_elapse(self, memory, duration) -> None:
        for fault in self.faults:
            fault.on_elapse(memory, duration)

    def describe(self) -> str:
        members = "; ".join(fault.describe() for fault in self.faults)
        return f"linked [{members}]"


def linked_cfid_pair(
    aggressor1: int,
    aggressor2: int,
    victim: int,
    rising1: bool,
    rising2: bool,
    forced1: int,
    bit: int = 0,
) -> CompositeFault:
    """Two CFids on one victim with opposing forced values.

    The second member forces the complement of the first, which is the
    masking-capable combination: if both aggressors transition between
    reads of the victim, the second force undoes the first.
    """
    return CompositeFault(
        [
            IdempotentCouplingFault(
                aggressor1, bit, victim, bit, rising1, forced1
            ),
            IdempotentCouplingFault(
                aggressor2, bit, victim, bit, rising2, forced1 ^ 1
            ),
        ],
        kind="CFid-linked",
    )


def linked_cfid_universe(n_words: int) -> List[CompositeFault]:
    """Linked CFid pairs over nearby cell triples.

    For every victim, three physically realistic aggressor-pair
    geometries — both aggressors *below* the victim, both *above*, and
    one on each side — with all rising/falling trigger combinations and
    opposing forced values (up to 24 linked faults per victim).

    The same-side geometries are the discriminating ones: a march sweep
    toggles both aggressors before reaching the victim, so the second
    member's force can mask the first in *every* element of March C —
    the measured escape class that March LR closes (benchmark X8).
    """
    faults: List[CompositeFault] = []
    for victim in range(n_words):
        pair_geometries = []
        if victim >= 2:
            pair_geometries.append((victim - 2, victim - 1))  # both below
        if victim + 2 < n_words:
            pair_geometries.append((victim + 1, victim + 2))  # both above
        if 1 <= victim < n_words - 1:
            pair_geometries.append((victim - 1, victim + 1))  # straddle
        for aggressor1, aggressor2 in pair_geometries:
            for rising1 in (True, False):
                for rising2 in (True, False):
                    for forced1 in (0, 1):
                        faults.append(
                            linked_cfid_pair(
                                aggressor1, aggressor2, victim,
                                rising1, rising2, forced1,
                            )
                        )
    return faults
