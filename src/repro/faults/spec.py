"""Textual fault specifications: the serialisable fault format.

A *fault spec* is a small colon-separated string naming one behavioural
fault, e.g. ``saf:3:0:1`` (stuck-at-1 at cell (3,0)).  It is the wire
format everywhere a fault must travel as data rather than as a live
object: the ``repro run --fault`` / ``conformance run-faulty --fault``
CLI flags, the fault axis of the delta-debugging shrinker, fuzz-report
reproducers and the corpus regression entries — all of which need a
fault that can be written to JSON and parsed back bit-identically.

:func:`parse_fault` and :func:`format_fault` are exact inverses for
every spec-expressible kind::

    saf:W:B:V          stuck-at-V at cell (W,B)
    tf:W:B:up|down     transition fault at cell (W,B)
    drf:W:B:V          data-retention fault losing V at cell (W,B)
    sof:W:B:V          stuck-open (weak V) at cell (W,B)
    irf:W:B:S          incorrect read fault sensitised by state S
    rdf:W:B:S          read destructive fault sensitised by state S
    drdf:W:B:S         deceptive read destructive fault (state S)
    cfin:AW:AB:VW:VB:up|down
                       inversion coupling, aggressor (AW,AB) -> victim
    cfid:AW:AB:VW:VB:up|down:F
                       idempotent coupling forcing the victim to F
    cfst:AW:AB:VW:VB:S:F
                       state coupling (aggressor state S forces F)
    af1:A              address A selects no cell
    af2:A:W            address A selects the wrong cell W
    af3:A:A2           addresses A and A2 share one cell
    af4:A:W            address A selects its own cell plus W
    paf:P:W:B          cell (W,B) disconnected from port P
    pafc:P:W:B         contention PAF: (W,B) lost by port P only under
                       simultaneous access to word W by another port
    cfxp:AW:AB:VW:VB:up|down:F
                       cross-port coupling: aggressor transition forces
                       the victim to F only when another port accesses
                       the victim's word in the same cycle

Faults outside this vocabulary (NPSF with its neighbourhood pattern
lists, linked composites, port-restricted wrappers) have no spec form;
:func:`format_fault` returns ``None`` for them and callers that need a
round trip (the shrinker, the fuzz fault draw) restrict themselves to
spec-expressible populations.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.address_decoder import (
    AddressMapsNowhere,
    AddressMapsToMultiple,
    AddressMapsToWrongCell,
    TwoAddressesOneCell,
)
from repro.faults.base import CellFault
from repro.faults.concurrent import (
    ConcurrentPortAccessFault,
    CrossPortCouplingFault,
)
from repro.faults.coupling import (
    IdempotentCouplingFault,
    InversionCouplingFault,
    StateCouplingFault,
)
from repro.faults.port import PortStuckOpenAccess
from repro.faults.read_faults import (
    DeceptiveReadDestructiveFault,
    IncorrectReadFault,
    ReadDestructiveFault,
)
from repro.faults.retention import DataRetentionFault
from repro.faults.stuck_at import StuckAtFault
from repro.faults.stuck_open import StuckOpenFault
from repro.faults.transition import TransitionFault


class FaultSpecError(ValueError):
    """Raised for malformed fault specifications."""


def _direction(token: str) -> bool:
    if token in ("up", "rising", "1"):
        return True
    if token in ("down", "falling", "0"):
        return False
    raise FaultSpecError(f"bad transition direction {token!r} (up/down)")


def parse_fault(spec: str) -> CellFault:
    """Parse one fault specification (see module docstring)."""
    parts = spec.lower().split(":")
    kind, args = parts[0], parts[1:]
    try:
        if kind == "saf":
            word, bit, value = map(int, args)
            return StuckAtFault(word, bit, value)
        if kind == "tf":
            word, bit = int(args[0]), int(args[1])
            return TransitionFault(word, bit, _direction(args[2]))
        if kind == "drf":
            word, bit, from_value = map(int, args)
            return DataRetentionFault(word, bit, from_value)
        if kind == "sof":
            word, bit, weak = map(int, args)
            return StuckOpenFault(word, bit, weak)
        if kind == "irf":
            word, bit, state = map(int, args)
            return IncorrectReadFault(word, bit, state)
        if kind == "rdf":
            word, bit, state = map(int, args)
            return ReadDestructiveFault(word, bit, state)
        if kind == "drdf":
            word, bit, state = map(int, args)
            return DeceptiveReadDestructiveFault(word, bit, state)
        if kind == "cfin":
            aw, ab, vw, vb = map(int, args[:4])
            return InversionCouplingFault(aw, ab, vw, vb, _direction(args[4]))
        if kind == "cfid":
            aw, ab, vw, vb = map(int, args[:4])
            return IdempotentCouplingFault(
                aw, ab, vw, vb, _direction(args[4]), int(args[5])
            )
        if kind == "cfst":
            aw, ab, vw, vb, state, forced = map(int, args)
            return StateCouplingFault(aw, ab, vw, vb, state, forced)
        if kind == "af1":
            return AddressMapsNowhere(int(args[0]))
        if kind == "af2":
            return AddressMapsToWrongCell(int(args[0]), int(args[1]))
        if kind == "af3":
            return TwoAddressesOneCell(int(args[0]), int(args[1]))
        if kind == "af4":
            return AddressMapsToMultiple(int(args[0]), int(args[1]))
        if kind == "paf":
            port, word, bit = map(int, args)
            return PortStuckOpenAccess(port, word, bit)
        if kind == "pafc":
            port, word, bit = map(int, args)
            return ConcurrentPortAccessFault(port, word, bit)
        if kind == "cfxp":
            aw, ab, vw, vb = map(int, args[:4])
            return CrossPortCouplingFault(
                aw, ab, vw, vb, _direction(args[4]), int(args[5])
            )
    except FaultSpecError:
        raise
    except (ValueError, IndexError) as error:
        raise FaultSpecError(f"bad fault spec {spec!r}: {error}") from None
    raise FaultSpecError(
        f"unknown fault kind {kind!r} "
        f"(saf/tf/drf/sof/irf/rdf/drdf/cfin/cfid/cfst/af1-af4/paf/"
        f"pafc/cfxp)"
    )


def format_fault(fault: CellFault) -> Optional[str]:
    """Render ``fault`` as a spec string, or ``None`` when inexpressible.

    ``parse_fault(format_fault(f))`` rebuilds a behaviourally identical
    fault for every non-``None`` result.
    """
    if isinstance(fault, StuckAtFault):
        return f"saf:{fault.word}:{fault.bit}:{fault.value}"
    if isinstance(fault, TransitionFault):
        arrow = "up" if fault.rising else "down"
        return f"tf:{fault.word}:{fault.bit}:{arrow}"
    if isinstance(fault, DataRetentionFault):
        return f"drf:{fault.word}:{fault.bit}:{fault.from_value}"
    if isinstance(fault, StuckOpenFault):
        return f"sof:{fault.word}:{fault.bit}:{fault.weak_value}"
    if isinstance(fault, IncorrectReadFault):
        return f"irf:{fault.word}:{fault.bit}:{fault.state}"
    if isinstance(fault, ReadDestructiveFault):
        return f"rdf:{fault.word}:{fault.bit}:{fault.state}"
    if isinstance(fault, DeceptiveReadDestructiveFault):
        return f"drdf:{fault.word}:{fault.bit}:{fault.state}"
    if isinstance(fault, IdempotentCouplingFault):
        arrow = "up" if fault.rising else "down"
        return (
            f"cfid:{fault.aggressor_word}:{fault.aggressor_bit}:"
            f"{fault.victim_word}:{fault.victim_bit}:{arrow}:"
            f"{fault.forced_value}"
        )
    if isinstance(fault, InversionCouplingFault):
        arrow = "up" if fault.rising else "down"
        return (
            f"cfin:{fault.aggressor_word}:{fault.aggressor_bit}:"
            f"{fault.victim_word}:{fault.victim_bit}:{arrow}"
        )
    if isinstance(fault, StateCouplingFault):
        return (
            f"cfst:{fault.aggressor_word}:{fault.aggressor_bit}:"
            f"{fault.victim_word}:{fault.victim_bit}:"
            f"{fault.aggressor_state}:{fault.forced_value}"
        )
    if isinstance(fault, AddressMapsNowhere):
        return f"af1:{fault.address}"
    if isinstance(fault, AddressMapsToWrongCell):
        return f"af2:{fault.address}:{fault.wrong_word}"
    if isinstance(fault, TwoAddressesOneCell):
        return f"af3:{fault.address}:{fault.other_address}"
    if isinstance(fault, AddressMapsToMultiple):
        return f"af4:{fault.address}:{fault.extra_word}"
    if isinstance(fault, PortStuckOpenAccess):
        return f"paf:{fault.port}:{fault.word}:{fault.bit}"
    if isinstance(fault, ConcurrentPortAccessFault):
        return f"pafc:{fault.port}:{fault.word}:{fault.bit}"
    if isinstance(fault, CrossPortCouplingFault):
        arrow = "up" if fault.rising else "down"
        return (
            f"cfxp:{fault.aggressor_word}:{fault.aggressor_bit}:"
            f"{fault.victim_word}:{fault.victim_bit}:{arrow}:"
            f"{fault.forced_value}"
        )
    return None
