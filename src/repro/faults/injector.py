"""Single-fault injection management for coverage experiments.

Coverage studies run one fault at a time (the single-fault assumption of
the functional fault models): :class:`FaultInjector` wraps a memory and
provides a context manager that attaches a fault, hands the memory to the
experiment, and guarantees clean removal and state reset afterwards, so
thousands of faults can reuse one memory instance cheaply.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.faults.base import CellFault
from repro.memory.sram import Sram


class FaultInjector:
    """Injects faults one at a time into a dedicated memory instance."""

    def __init__(self, memory: Sram) -> None:
        self.memory = memory

    @contextlib.contextmanager
    def injected(self, fault: CellFault) -> Iterator[Sram]:
        """Context manager: memory with exactly ``fault`` present.

        The memory's cell contents, clock and the fault's dynamic state
        are reset on entry; the fault (and any decoder rewrite it made)
        is removed on exit.

        Exit is exception-safe even against faults whose ``remove``
        itself raises: :meth:`Sram.detach_all` restores the decoder and
        clears the fault list in a ``finally`` of its own, and the
        state reset below runs regardless, so a misbehaving fault can
        never leak half-attached into the next experiment (the original
        error still propagates).
        """
        self.memory.detach_all()
        self.memory.reset_state()
        self.memory.attach(fault)
        # ``reset_state`` above ran before the fault was attached, so it
        # could not touch *this* fault's dynamic state (disturb counters,
        # retention idle time).  Reset it explicitly: the documented
        # contract is that every injected run starts from a power-cycled
        # defective part, independent of what earlier experiments did to
        # the same fault object.
        fault.reset()
        try:
            yield self.memory
        finally:
            try:
                self.memory.detach_all()
            finally:
                self.memory.reset_state()

    def pristine(self) -> Sram:
        """The memory with all faults removed and state cleared."""
        self.memory.detach_all()
        self.memory.reset_state()
        return self.memory
