"""Faults sensitised only by simultaneous multi-port accesses.

The per-port repetition the paper's controllers implement (microcode
``Inc. Port`` / FSM path B) catches defects of one port's private access
path (:class:`~repro.faults.port.PortStuckOpenAccess`), but a class of
multiport defects only manifests when **two ports are active in the same
cycle** — word-line coupling between the ports' parallel wires, shared
sense-amplifier contention, inter-port bit-line shorts (the multiport
regime of the paper's Table 2).  One-port-at-a-time stimuli provably
cannot sensitise them: the models below gate on the
``on_cycle_start``/``on_cycle_end`` hooks that only
:meth:`repro.memory.sram.Sram.cycle` fires, so under sequential
expansion they are behaviourally transparent, while the concurrent
dual-port expansion of :mod:`repro.march.concurrent` detects them.

Two models, matching the spec vocabulary of :mod:`repro.faults.spec`:

* :class:`ConcurrentPortAccessFault` (``pafc:P:W:B``) — a contention
  PAF: accesses to cell ``(W,B)`` through port ``P`` break (reads
  float, writes do not land) only in cycles where a *second* port
  accesses the same word simultaneously.
* :class:`CrossPortCouplingFault` (``cfxp:AW:AB:VW:VB:up|down:F``) — an
  idempotent coupling between ports: an aggressor write transition
  forces the victim cell to ``F``, but only when another port accesses
  the victim's word in the same cycle (the coupling path runs between
  the two ports' word lines, so it needs both selected at once).
"""

from __future__ import annotations

from typing import FrozenSet, List

from repro.faults.base import CellFault, bit_of, with_bit


def _co_accessed_words(memory, group) -> dict:
    """Map physical word -> set of ports accessing it in this group."""
    touched: dict = {}
    for op in group:
        if op.is_delay:
            continue
        for word in memory.decoder.targets(op.address):
            touched.setdefault(word, set()).add(op.port)
    return touched


class ConcurrentPortAccessFault(CellFault):
    """Contention PAF: port ``port`` loses cell ``(word, bit)`` only
    under simultaneous access to the same word by another port.

    Models a marginal access device that still switches when its word
    line fires alone but loses the fight when a second port's word line
    selects the same row in the same cycle (supply droop / charge
    sharing between the parallel access paths).  Reads through the
    defective port then observe the floating ``open_value``; writes
    through it do not reach the cell bit.  Sequential per-port
    repetition never co-selects two ports, so this fault is invisible
    to it — the defining example of why the concurrent expansion mode
    exists.
    """

    kind = "PAFc"

    def __init__(
        self, port: int, word: int, bit: int, open_value: int = 0
    ) -> None:
        if open_value not in (0, 1):
            raise ValueError(f"open value must be 0 or 1, got {open_value!r}")
        self.port = port
        self.word = word
        self.bit = bit
        self.open_value = open_value
        self._contended: FrozenSet[int] = frozenset()

    def install(self, memory) -> None:
        if self.port >= memory.ports:
            raise ValueError(
                f"memory has {memory.ports} port(s); no port {self.port}"
            )

    def reset(self) -> None:
        self._contended = frozenset()

    def on_cycle_start(self, memory, group) -> None:
        touched = _co_accessed_words(memory, group)
        self._contended = frozenset(
            word for word, ports in touched.items() if len(ports) >= 2
        )

    def on_cycle_end(self, memory, group) -> None:
        self._contended = frozenset()

    def on_read(self, memory, port: int, word: int, value: int) -> int:
        if (
            port == self.port
            and word == self.word
            and word in self._contended
        ):
            return with_bit(value, self.bit, self.open_value)
        return value

    def on_write(self, memory, port: int, word: int, old: int, new: int) -> int:
        if (
            port == self.port
            and word == self.word
            and word in self._contended
        ):
            # The contended write does not reach the cell bit.
            return with_bit(new, self.bit, bit_of(old, self.bit))
        return new

    def describe(self) -> str:
        return (
            f"PAFc: cell ({self.word},{self.bit}) lost by port {self.port} "
            f"under simultaneous access (floating reads = {self.open_value})"
        )


class CrossPortCouplingFault(CellFault):
    """Cross-port idempotent coupling: an aggressor write transition
    forces the victim cell, but only when a *different* port accesses
    the victim's word in the same cycle.

    ``rising`` selects the sensitising aggressor-bit transition
    (0→1 when True, 1→0 when False) and ``forced_value`` is what the
    victim bit is driven to — the CFid contract of
    :class:`~repro.faults.coupling.IdempotentCouplingFault`, with the
    extra cross-port gate.  Sequential expansion never co-selects the
    victim through a second port, so the coupling never fires there.
    """

    kind = "CFxp"

    def __init__(
        self,
        aggressor_word: int,
        aggressor_bit: int,
        victim_word: int,
        victim_bit: int,
        rising: bool,
        forced_value: int,
    ) -> None:
        if forced_value not in (0, 1):
            raise ValueError(
                f"forced value must be 0 or 1, got {forced_value!r}"
            )
        if (aggressor_word, aggressor_bit) == (victim_word, victim_bit):
            raise ValueError("a cell cannot cross-couple to itself")
        self.aggressor_word = aggressor_word
        self.aggressor_bit = aggressor_bit
        self.victim_word = victim_word
        self.victim_bit = victim_bit
        self.rising = bool(rising)
        self.forced_value = forced_value
        self._victim_ports: FrozenSet[int] = frozenset()

    def reset(self) -> None:
        self._victim_ports = frozenset()

    def on_cycle_start(self, memory, group) -> None:
        touched = _co_accessed_words(memory, group)
        self._victim_ports = frozenset(touched.get(self.victim_word, ()))

    def on_cycle_end(self, memory, group) -> None:
        self._victim_ports = frozenset()

    def on_any_write(self, memory, port: int, word: int, old: int, new: int) -> None:
        if word != self.aggressor_word:
            return
        was = bit_of(old, self.aggressor_bit)
        now = bit_of(new, self.aggressor_bit)
        triggered = (was, now) == ((0, 1) if self.rising else (1, 0))
        if not triggered:
            return
        # The coupling path needs the victim word selected through a
        # port other than the one driving the aggressor write.
        if any(p != port for p in self._victim_ports):
            memory.force_bit(
                self.victim_word, self.victim_bit, self.forced_value
            )

    def describe(self) -> str:
        arrow = "rising" if self.rising else "falling"
        return (
            f"CFxp: {arrow} write on ({self.aggressor_word},"
            f"{self.aggressor_bit}) forces ({self.victim_word},"
            f"{self.victim_bit}) to {self.forced_value} under "
            f"cross-port victim access"
        )


def concurrent_fault_universe(
    n_words: int, width: int, ports: int
) -> List[CellFault]:
    """All concurrency-sensitised faults of a geometry.

    Empty for single-port memories (the defects need two ports).  The
    cross-port coupling stratum is restricted to intra-word bit pairs:
    the concurrent expansion's companion port reads the *same address*
    as the active port, so those are exactly the aggressor/victim pairs
    a same-cycle access can co-select (and for bit-oriented memories
    the stratum is empty).
    """
    if ports < 2:
        return []
    faults: List[CellFault] = [
        ConcurrentPortAccessFault(port, word, bit)
        for port in range(ports)
        for word in range(n_words)
        for bit in range(width)
    ]
    for word in range(n_words):
        for aggressor_bit in range(width):
            for victim_bit in range(width):
                if victim_bit == aggressor_bit:
                    continue
                for rising in (True, False):
                    for forced in (0, 1):
                        faults.append(
                            CrossPortCouplingFault(
                                word, aggressor_bit, word, victim_bit,
                                rising, forced,
                            )
                        )
    return faults
