"""The resilient job engine under every sharded workload.

All sharded work in the repository — fault sweeps, multi-geometry
sweeps, vector batch sweeps, fuzz corpora — used to go straight to a
:class:`concurrent.futures.ProcessPoolExecutor`.  That executor has the
wrong failure semantics for long sweeps: one OOM-killed worker raises
``BrokenProcessPool`` and discards every completed shard, a wedged
worker hangs the whole run, and a poison shard aborts the sweep instead
of being reported.  :class:`JobEngine` replaces it with a small worker
pool built directly on :mod:`multiprocessing` pipes so the orchestrator
always knows *which* job a dead worker was running:

* **per-job timeouts** — a worker that exceeds its deadline is killed
  (``SIGKILL``; a wedged job cannot be asked nicely) and replaced, and
  the job is retried or failed;
* **bounded retry with exponential backoff + jitter** — a raising job
  is requeued up to :attr:`RetryPolicy.max_attempts` times; the jitter
  is *deterministic* (derived from the job key and attempt number) so
  engine behaviour is reproducible under test;
* **crash recovery** — a worker that dies mid-job (OOM killer, SIGKILL,
  segfault) is detected through its process sentinel, the pool is
  rebuilt, and the in-flight job is requeued; after
  :attr:`RetryPolicy.max_crashes` crashes the job is **quarantined**
  (reported, never rerun) instead of taking the run down;
* **graceful degradation** — when replacement workers cannot be
  spawned at all, the engine drops to a serial in-process fallback for
  the remaining jobs (mirroring the vector→scalar fallback contract);
  jobs with crash or timeout history are quarantined rather than run
  in the orchestrator process;
* **interruption with artifacts** — ``KeyboardInterrupt`` (SIGINT)
  surfaces as :class:`JobsInterrupted` carrying every completed
  outcome, so callers can write a partial, resumable report instead of
  exiting empty-handed.

The orchestrator itself is an asyncio coroutine: blocking waits on the
worker pipes/sentinels run in the default executor, and the
retry/requeue logic is plain coroutine code.  :meth:`JobEngine.run` is
the synchronous facade.  One engine may be reused across several
``run()`` calls (the multi-geometry sweep shares one pool across
geometries) and must be :meth:`closed <JobEngine.close>` — or used as a
context manager — when done.

Jobs must be picklable: ``fn`` a module-level function, ``payload``
plain data.  Workers are forked where available and ignore SIGINT, so
interrupting a sweep leaves shutdown coordination to the orchestrator.
"""

from __future__ import annotations

import asyncio
import hashlib
import multiprocessing
import pickle
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Sequence

#: Upper bound on one blocking wait on the pool, so the event loop (and
#: a pending SIGINT) is serviced regularly even while every worker is
#: deep in a long shard.
_WAIT_TICK_S = 0.25

#: Job statuses.
OK = "ok"
FAILED = "failed"
QUARANTINED = "quarantined"


class ServiceError(RuntimeError):
    """Base class for job-engine errors."""


class JobsInterrupted(ServiceError):
    """SIGINT mid-run; carries every outcome completed so far.

    ``outcomes`` preserves submission order (completed jobs only), so a
    caller can merge a partial, resumable artifact before exiting.
    """

    def __init__(self, outcomes: List["JobOutcome"]) -> None:
        super().__init__(
            f"interrupted with {len(outcomes)} completed job(s)"
        )
        self.outcomes = outcomes


@dataclass(frozen=True)
class Job:
    """One unit of work: a picklable ``fn(payload)`` call.

    ``key`` is the job's stable identity — it names the job in
    quarantine records and seeds the deterministic retry jitter, and
    callers typically reuse their result-store key for it.
    """

    key: str
    fn: Callable[[Any], Any]
    payload: Any


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/quarantine knobs of one engine.

    Attributes:
        max_attempts: dispatch attempts per job (errors and timeouts
            both consume attempts).
        max_crashes: worker crashes a job survives before it is
            quarantined as poison (crashes do *not* consume regular
            attempts — a crashed worker says nothing about the job's
            own logic, until it repeats).
        timeout: per-job wall-clock budget in seconds (``None`` = no
            deadline).
        backoff_base: first retry delay, seconds.
        backoff_factor: delay multiplier per further attempt.
        backoff_cap: delay ceiling, seconds.
        max_spawn_failures: consecutive worker-spawn failures before
            the engine degrades to the serial in-process fallback.
    """

    max_attempts: int = 3
    max_crashes: int = 2
    timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    max_spawn_failures: int = 3

    def backoff(self, key: str, attempt: int) -> float:
        """Deterministic exponential backoff with jitter.

        The jitter (50–100% of the nominal delay) is derived from
        ``(key, attempt)`` rather than a live RNG, so two runs of the
        same workload back off identically — the determinism contract
        extends to the engine's own timing decisions.
        """
        nominal = min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** max(attempt - 1, 0),
        )
        digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
        fraction = 0.5 + int.from_bytes(digest[:4], "big") / 0xFFFFFFFF * 0.5
        return nominal * fraction


@dataclass
class JobOutcome:
    """Terminal state of one job.

    ``status`` is ``ok`` (``value`` holds the return), ``failed``
    (attempts exhausted on errors/timeouts) or ``quarantined`` (crash
    budget exhausted, or unsafe to rerun in degraded mode).
    """

    key: str
    status: str = OK
    value: Any = None
    error: Optional[str] = None
    attempts: int = 0
    crashes: int = 0
    timeouts: int = 0
    ran_inline: bool = False

    @property
    def ok(self) -> bool:
        return self.status == OK

    @property
    def safe_inline(self) -> bool:
        """Whether rerunning this job in-process is defensible.

        A job that crashed a worker or hit a timeout must never run in
        the orchestrator process — the same OOM/hang would take the
        whole run (and its completed results) down with it.
        """
        return self.crashes == 0 and self.timeouts == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "status": self.status,
            "error": self.error,
            "attempts": self.attempts,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "ran_inline": self.ran_inline,
        }


@dataclass
class EngineReport:
    """One ``run()``'s outcomes (submission order) plus pool telemetry."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    workers: int = 0
    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    quarantined: int = 0
    degraded: bool = False
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def outcome(self, key: str) -> Optional[JobOutcome]:
        for candidate in self.outcomes:
            if candidate.key == key:
                return candidate
        return None

    def stats(self) -> Dict[str, Any]:
        """The telemetry block sweeps embed under ``timing.service``."""
        return {
            "workers": self.workers,
            "jobs": len(self.outcomes),
            "retries": self.retries,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "quarantined": self.quarantined,
            "degraded": self.degraded,
        }


def _worker_main(task_r, result_w) -> None:
    """Worker loop: recv ``(job_id, fn, payload)``, send the outcome.

    SIGINT is ignored so a terminal Ctrl-C reaches only the
    orchestrator, which coordinates shutdown (and partial-report
    writing) itself.  EOF on the task pipe — including the orchestrator
    dying — is the shutdown signal.
    """
    import signal

    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass
    while True:
        try:
            item = task_r.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        job_id, fn, payload = item
        try:
            outcome = (job_id, OK, fn(payload))
        except BaseException as error:  # noqa: BLE001 - forwarded, not hidden
            outcome = (job_id, FAILED, f"{type(error).__name__}: {error}")
        try:
            result_w.send(outcome)
        except Exception as error:
            # The *result* failed to pickle; the job itself succeeded.
            # Report the serialisation failure rather than dying (which
            # would read as a crash and waste the crash budget).
            try:
                result_w.send((
                    job_id, FAILED,
                    f"unserialisable result: {type(error).__name__}: {error}",
                ))
            except Exception:
                return


class _JobState:
    """Mutable per-job bookkeeping while a job is live."""

    __slots__ = (
        "index", "job", "job_id", "attempts", "crashes", "timeouts",
        "ready_at",
    )

    def __init__(self, index: int, job: Job, job_id: int) -> None:
        self.index = index
        self.job = job
        self.job_id = job_id
        self.attempts = 0
        self.crashes = 0
        self.timeouts = 0
        self.ready_at = 0.0


class _Worker:
    """One pooled worker process and its two pipes."""

    def __init__(self, context) -> None:
        task_r, self.task_w = context.Pipe(duplex=False)
        self.result_r, result_w = context.Pipe(duplex=False)
        self.process = context.Process(
            target=_worker_main, args=(task_r, result_w), daemon=False
        )
        self.process.start()
        # Close the child's pipe ends in the parent so a dead child
        # surfaces as EOF on result_r instead of a silent stall.
        task_r.close()
        result_w.close()
        self.state: Optional[_JobState] = None
        self.deadline: Optional[float] = None

    def close_pipes(self) -> None:
        for conn in (self.task_w, self.result_r):
            try:
                conn.close()
            except Exception:
                pass

    def kill(self) -> None:
        try:
            self.process.kill()
        except Exception:
            pass
        self.process.join(timeout=5)
        self.close_pipes()

    def stop(self) -> None:
        """Graceful shutdown: EOF the task pipe, then escalate."""
        try:
            self.task_w.send(None)
        except Exception:
            pass
        self.process.join(timeout=1)
        if self.process.is_alive():
            self.kill()
        else:
            self.close_pipes()


def _pool_context():
    """Fork where available (cheap workers), spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class JobEngine:
    """A reusable resilient worker pool (see the module docstring).

    Args:
        workers: pool size; each ``run()`` spawns at most this many
            worker processes (and no more than it has jobs).
        policy: retry/backoff/quarantine knobs.
    """

    def __init__(
        self,
        workers: int = 2,
        policy: Optional[RetryPolicy] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        self.policy = policy or RetryPolicy()
        self._context = _pool_context()
        self._pool: List[_Worker] = []
        self._spawn_failures = 0
        self._degraded = False
        self._job_counter = 0
        self._closed = False
        self._pending_rebuilds = 0  # workers lost, replacements owed
        # Per-run state, kept on the instance so an interrupt handler
        # can harvest completed outcomes after the coroutine dies.
        self._states: List[_JobState] = []
        self._outcomes: Dict[int, JobOutcome] = {}
        self._report = EngineReport()

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "JobEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop every worker; idempotent."""
        self._closed = True
        for worker in self._pool:
            worker.stop()
        self._pool = []

    def _nuke_pool(self) -> None:
        """Emergency teardown: SIGKILL everything, no goodbyes."""
        for worker in self._pool:
            worker.kill()
        self._pool = []

    # -- entry points ------------------------------------------------------

    def run(self, jobs: Sequence[Job]) -> EngineReport:
        """Run ``jobs`` to completion; the synchronous facade.

        Raises:
            JobsInterrupted: on SIGINT, with the completed outcomes.
        """
        if self._closed:
            raise ServiceError("engine is closed")
        try:
            return asyncio.run(self.run_async(jobs))
        except KeyboardInterrupt:
            completed = [
                self._outcomes[state.job_id]
                for state in self._states
                if state.job_id in self._outcomes
            ]
            self._nuke_pool()
            raise JobsInterrupted(completed) from None

    async def run_async(self, jobs: Sequence[Job]) -> EngineReport:
        """The asyncio orchestrator behind :meth:`run`."""
        started = time.perf_counter()
        self._states = [
            _JobState(index, job, self._next_job_id())
            for index, job in enumerate(jobs)
        ]
        self._outcomes = {}
        self._report = EngineReport(workers=self.workers)
        self._drain_stale()

        pending = deque(self._states)
        loop = asyncio.get_running_loop()
        while len(self._outcomes) < len(self._states):
            now = time.monotonic()
            if not self._degraded:
                self._ensure_pool(len(self._states) - len(self._outcomes))
            if self._degraded:
                self._run_inline(pending)
                break
            self._dispatch(pending, now)
            handles: List[Any] = []
            for worker in self._pool:
                handles.append(worker.result_r)
                handles.append(worker.process.sentinel)
            timeout = self._wait_timeout(pending, now)
            if handles:
                await loop.run_in_executor(
                    None, _bounded_wait, handles, timeout
                )
            else:  # no pool (all died, respawn pending) — just pace
                await asyncio.sleep(min(timeout, _WAIT_TICK_S))
            now = time.monotonic()
            self._collect(pending, now)
            self._reap_dead(pending, now)
            self._reap_timeouts(pending, now)

        self._report.outcomes = [
            self._outcomes[state.job_id] for state in self._states
        ]
        self._report.wall_time_s = time.perf_counter() - started
        return self._report

    # -- internals ---------------------------------------------------------

    def _next_job_id(self) -> int:
        self._job_counter += 1
        return self._job_counter

    def _drain_stale(self) -> None:
        """Discard results a previous (interrupted) run left in pipes."""
        for worker in self._pool:
            try:
                while worker.result_r.poll(0):
                    worker.result_r.recv()
            except (EOFError, OSError):
                pass
            worker.state = None
            worker.deadline = None

    def _ensure_pool(self, outstanding: int) -> None:
        target = min(self.workers, max(outstanding, 1))
        while len(self._pool) < target:
            try:
                worker = _Worker(self._context)
            except Exception:
                self._spawn_failures += 1
                if self._spawn_failures >= self.policy.max_spawn_failures:
                    self._degraded = True
                    self._report.degraded = True
                    self._nuke_pool()
                return
            self._spawn_failures = 0
            self._pool.append(worker)
            if self._pending_rebuilds > 0:
                self._pending_rebuilds -= 1
                self._report.pool_rebuilds += 1

    def _pop_ready(self, pending: deque, now: float) -> Optional[_JobState]:
        for _ in range(len(pending)):
            state = pending.popleft()
            if state.ready_at <= now:
                return state
            pending.append(state)
        return None

    def _dispatch(self, pending: deque, now: float) -> None:
        for worker in self._pool:
            if not pending:
                return
            if worker.state is not None or not worker.process.is_alive():
                continue
            state = self._pop_ready(pending, now)
            if state is None:
                return
            try:
                worker.task_w.send(
                    (state.job_id, state.job.fn, state.job.payload)
                )
            except (pickle.PicklingError, AttributeError, TypeError) as err:
                # The *job* is unpicklable — a caller bug, not a pool
                # fault.  Fail it immediately; no retry will help.
                state.attempts += 1
                self._finish(state, FAILED, error=f"unpicklable job: {err}")
                continue
            except Exception:
                # Broken pipe: the worker died between polls.  Requeue
                # the job; the sentinel reaper respawns the worker.
                pending.appendleft(state)
                continue
            state.attempts += 1
            worker.state = state
            worker.deadline = (
                now + self.policy.timeout
                if self.policy.timeout is not None
                else None
            )

    def _wait_timeout(self, pending: deque, now: float) -> float:
        timeout = _WAIT_TICK_S
        for worker in self._pool:
            if worker.deadline is not None:
                timeout = min(timeout, worker.deadline - now)
        for state in pending:
            timeout = min(timeout, state.ready_at - now)
        return max(timeout, 0.0)

    def _finish(
        self,
        state: _JobState,
        status: str,
        value: Any = None,
        error: Optional[str] = None,
        ran_inline: bool = False,
    ) -> None:
        self._outcomes[state.job_id] = JobOutcome(
            key=state.job.key,
            status=status,
            value=value,
            error=error,
            attempts=state.attempts,
            crashes=state.crashes,
            timeouts=state.timeouts,
            ran_inline=ran_inline,
        )
        if status == QUARANTINED:
            self._report.quarantined += 1

    def _retry(self, state: _JobState, pending: deque, now: float) -> None:
        self._report.retries += 1
        state.ready_at = now + self.policy.backoff(
            state.job.key, state.attempts
        )
        pending.append(state)

    def _handle_result(
        self,
        worker: _Worker,
        message: Any,
        pending: deque,
        now: float,
    ) -> None:
        job_id, status, value = message
        state = worker.state
        if state is None or state.job_id != job_id:
            return  # stale leftover; already handled elsewhere
        worker.state = None
        worker.deadline = None
        if status == OK:
            self._finish(state, OK, value=value)
        elif state.attempts >= self.policy.max_attempts:
            self._finish(state, FAILED, error=str(value))
        else:
            self._retry(state, pending, now)

    def _collect(self, pending: deque, now: float) -> None:
        for worker in self._pool:
            try:
                while worker.result_r.poll(0):
                    self._handle_result(
                        worker, worker.result_r.recv(), pending, now
                    )
            except (EOFError, OSError):
                continue  # dead worker; the sentinel reaper handles it

    def _reap_dead(self, pending: deque, now: float) -> None:
        for worker in list(self._pool):
            if worker.process.is_alive():
                continue
            # A worker can finish its job and *then* die; drain first so
            # a completed result is never misread as a crash.
            try:
                while worker.result_r.poll(0):
                    self._handle_result(
                        worker, worker.result_r.recv(), pending, now
                    )
            except (EOFError, OSError):
                pass
            state = worker.state
            self._pool.remove(worker)
            worker.kill()
            self._pending_rebuilds += 1
            if state is None:
                continue
            state.crashes += 1
            self._report.crashes += 1
            if state.crashes > self.policy.max_crashes:
                self._finish(
                    state, QUARANTINED,
                    error=(
                        f"worker crashed {state.crashes} times running "
                        f"this job (poison; quarantined)"
                    ),
                )
            else:
                self._retry(state, pending, now)

    def _reap_timeouts(self, pending: deque, now: float) -> None:
        for worker in list(self._pool):
            state = worker.state
            if (
                state is None
                or worker.deadline is None
                or now < worker.deadline
            ):
                continue
            self._report.timeouts += 1
            state.timeouts += 1
            self._pool.remove(worker)
            worker.kill()  # a hung job only responds to SIGKILL
            self._pending_rebuilds += 1
            if state.attempts >= self.policy.max_attempts:
                self._finish(
                    state, FAILED,
                    error=(
                        f"timed out after {self.policy.timeout}s "
                        f"(attempt {state.attempts})"
                    ),
                )
            else:
                self._retry(state, pending, now)

    def _run_inline(self, pending: deque) -> None:
        """Serial in-process fallback once the pool is unbuildable.

        One attempt per job, no timeout enforcement (there is no worker
        to kill), and jobs with crash/timeout history are quarantined —
        rerunning a suspected OOM/hang in the orchestrator process
        would forfeit every completed result.
        """
        while pending:
            state = pending.popleft()
            if state.crashes > 0 or state.timeouts > 0:
                self._finish(
                    state, QUARANTINED,
                    error=(
                        "pool unavailable and the job has "
                        f"{state.crashes} crash(es)/{state.timeouts} "
                        "timeout(s); not safe to run in-process"
                    ),
                )
                continue
            state.attempts += 1
            try:
                value = state.job.fn(state.job.payload)
            except KeyboardInterrupt:
                pending.appendleft(state)
                raise
            except Exception as error:
                self._finish(
                    state, FAILED,
                    error=f"{type(error).__name__}: {error}",
                    ran_inline=True,
                )
            else:
                self._finish(state, OK, value=value, ran_inline=True)


def _bounded_wait(handles: List[Any], timeout: float) -> List[Any]:
    """``connection.wait`` capped at the tick (keeps SIGINT responsive)."""
    return mp_connection.wait(handles, min(timeout, _WAIT_TICK_S))
