"""Deterministic fault injection for the service layer itself.

:class:`~repro.faults.injector.FaultInjector` breaks the *memory under
test*; this module breaks the *harness*: workers are SIGKILLed
mid-shard, jobs raise or hang on schedule, store entries rot.  Every
behaviour is deterministic — keyed by shard index, with "-once"
variants coordinated through sentinel files — so the chaos suite can
assert exact recovery outcomes (byte-identical reports, precise crash
counts) instead of probabilistic ones.

A :class:`ChaosPlan` is threaded into the sharded sweeps
(``run_fault_sweep(..., chaos=plan)``); each shard's worker invocation
is wrapped in :func:`chaos_apply`, which misbehaves *before* running
the real shard:

``kill`` / ``kill-once``
    ``SIGKILL`` the worker process (unconditionally / on the first
    attempt only).  ``kill`` exhausts the engine's crash budget and
    exercises quarantine; ``kill-once`` exercises crash recovery with
    a byte-identical final report.
``raise`` / ``raise-once``
    Raise :class:`ChaosError` (every attempt / first attempt only),
    exercising bounded retry with backoff and terminal failure.
``hang`` / ``hang-once``
    Sleep far past any sane deadline, exercising the per-job timeout
    kill (a wedged worker is indistinguishable from a hung one — both
    only respond to SIGKILL).
``none``
    Run the shard untouched.

``interrupt_after`` simulates ``SIGINT`` in the *orchestrator*: the
inline checkpointed sweep raises :class:`KeyboardInterrupt` after that
many shards complete, which drives the interrupt→partial-report→resume
path without real signals or timing races (fuzz identity (i) runs it
on every sample).

:func:`corrupt_store_entry` flips a stored payload without updating its
hash, so the store's integrity check must catch it and the sweep must
recompute the shard.
"""

from __future__ import annotations

import os
import pathlib
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.service.store import ResultStore, StoreKey

#: Recognised shard behaviours.
BEHAVIOURS = (
    "none", "kill", "kill-once", "raise", "raise-once", "hang", "hang-once",
)


class ChaosError(RuntimeError):
    """The injected job failure (distinguishable from real bugs)."""


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic misbehaviour schedule for one sweep.

    Attributes:
        behaviors: shard index → behaviour (absent shards run clean).
        sentinel_dir: directory for the "-once" coordination files;
            required when any "-once" behaviour is scheduled (it must
            be visible to the worker processes, so a tmpdir).
        hang_s: how long "hang" sleeps (far above the test deadline).
        interrupt_after: raise ``KeyboardInterrupt`` in the
            orchestrator after this many shards complete (inline
            checkpointed sweeps only); ``None`` disables.
    """

    behaviors: Dict[int, str] = field(default_factory=dict)
    sentinel_dir: Optional[str] = None
    hang_s: float = 3600.0
    interrupt_after: Optional[int] = None

    def __post_init__(self) -> None:
        unknown = set(self.behaviors.values()) - set(BEHAVIOURS)
        if unknown:
            raise ValueError(
                f"unknown chaos behaviour(s) {sorted(unknown)}; "
                f"known: {list(BEHAVIOURS)}"
            )
        if (
            any(b.endswith("-once") for b in self.behaviors.values())
            and self.sentinel_dir is None
        ):
            raise ValueError(
                "'-once' behaviours need a sentinel_dir to remember "
                "their first firing across worker processes"
            )

    def wrap(
        self,
        shard_index: int,
        fn: Callable[[Any], Any],
        payload: Any,
    ) -> Tuple[Callable[[Any], Any], Any]:
        """The ``(fn, payload)`` a sweep should submit for this shard."""
        behavior = self.behaviors.get(shard_index, "none")
        if behavior == "none":
            return fn, payload
        return chaos_apply, (
            behavior,
            self._sentinel(shard_index, behavior),
            self.hang_s,
            fn,
            payload,
        )

    def _sentinel(self, shard_index: int, behavior: str) -> Optional[str]:
        if not behavior.endswith("-once"):
            return None
        return str(
            pathlib.Path(self.sentinel_dir)
            / f"chaos-{behavior}-{shard_index}.fired"
        )


def _fire_once(sentinel: Optional[str]) -> bool:
    """Atomically claim the first firing of a "-once" behaviour."""
    if sentinel is None:
        return True
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def chaos_apply(args: Tuple[str, Optional[str], float, Callable, Any]) -> Any:
    """Worker-side wrapper: misbehave as scheduled, then run the job."""
    behavior, sentinel, hang_s, fn, payload = args
    if behavior in ("kill", "kill-once"):
        if behavior == "kill" or _fire_once(sentinel):
            os.kill(os.getpid(), signal.SIGKILL)
    elif behavior in ("raise", "raise-once"):
        if behavior == "raise" or _fire_once(sentinel):
            raise ChaosError(f"injected failure ({behavior})")
    elif behavior in ("hang", "hang-once"):
        if behavior == "hang" or _fire_once(sentinel):
            time.sleep(hang_s)
    return fn(payload)


def corrupt_store_entry(store: ResultStore, key: StoreKey) -> bool:
    """Flip the stored payload of ``key`` without updating its hash.

    Returns whether an entry existed to corrupt.  The mutation keeps
    the file valid JSON — the interesting detection path is the
    content-hash mismatch, not a parse error.
    """
    import json

    path = store.entries_dir / key.digest[:2] / f"{key.digest}.json"
    try:
        with open(path) as handle:
            entry = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return False
    payload = entry.get("payload")
    if isinstance(payload, dict):
        payload["checked"] = payload.get("checked", 0) + 1
        payload["chaos_bitflip"] = True
    else:
        entry["payload"] = {"chaos_bitflip": True, "was": payload}
    with open(path, "w") as handle:
        json.dump(entry, handle, indent=2)
        handle.write("\n")
    return True
