"""File-backed sweep sessions: the configure→start→poll→collect idiom.

``repro serve`` models the paper's BIST-controller handshake at the
harness level, the way a LiteDRAM-style controller is driven: a client
**configures** a session (writes the sweep spec), **starts** it (runs
the sweep through the job engine with the session store as cache),
**polls** its status, and **collects** the report.  Because every state
transition is a file under the session directory, sessions survive the
process that created them: a ``run`` that crashes or is interrupted
leaves the spec plus checkpointed shards, and the next ``run`` resumes
from them.

Layout under a service root::

    entries/                      the shared :class:`ResultStore`
    sessions/<id>/spec.json       the submitted sweep specification
    sessions/<id>/report.json     the (possibly partial) sweep report

The session id is the first 12 hex digits of the canonicalised spec's
SHA-256 — submitting the same sweep twice yields the same session, and
its second run is pure cache hits.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Any, Dict, List, Optional

from repro.service.store import ResultStore, canonical_json

#: Session lifecycle states, derived purely from which files exist and
#: what the report says — no daemon, no lock, crash-safe by layout.
STATES = ("submitted", "interrupted", "failed", "complete")


def _sessions_dir(root) -> pathlib.Path:
    return pathlib.Path(root) / "sessions"


def normalise_spec(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Fill defaults so equivalent submissions share a session id."""
    out = {
        "algorithms": spec.get("algorithms") or "all",
        "geometries": [list(g) for g in spec.get("geometries") or [[8, 2, 1]]],
        "per_kind": int(spec.get("per_kind", 2)),
        "seed": int(spec.get("seed", 0)),
        "full": bool(spec.get("full", False)),
        "compress": bool(spec.get("compress", True)),
        "max_ops": spec.get("max_ops"),
        "engine": spec.get("engine", "scalar"),
        "mode": spec.get("mode", "sequential"),
    }
    if isinstance(out["algorithms"], (list, tuple)):
        out["algorithms"] = sorted(out["algorithms"])
    return out


def session_id(spec: Dict[str, Any]) -> str:
    digest = hashlib.sha256(
        canonical_json(normalise_spec(spec)).encode("utf-8")
    ).hexdigest()
    return digest[:12]


def submit_session(root, spec: Dict[str, Any]) -> str:
    """Configure: persist ``spec`` and return the session id."""
    spec = normalise_spec(spec)
    sid = session_id(spec)
    directory = _sessions_dir(root) / sid
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / "spec.json", "w") as handle:
        json.dump(spec, handle, indent=2)
        handle.write("\n")
    return sid


def load_spec(root, sid: str) -> Dict[str, Any]:
    path = _sessions_dir(root) / sid / "spec.json"
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise KeyError(f"no session {sid!r} under {root}") from None


def load_report(root, sid: str) -> Optional[Dict[str, Any]]:
    path = _sessions_dir(root) / sid / "report.json"
    try:
        with open(path) as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None


def session_status(root, sid: str) -> Dict[str, Any]:
    """Poll: one session's state, derived from its files."""
    spec = load_spec(root, sid)
    report = load_report(root, sid)
    if report is None:
        state = "submitted"
    elif report.get("interrupted"):
        state = "interrupted"
    elif report.get("ok"):
        state = "complete"
    else:
        state = "failed"
    status: Dict[str, Any] = {"session": sid, "state": state, "spec": spec}
    if report is not None:
        status["checked"] = report.get("checked", 0)
        status["failures"] = report.get("failure_count", 0)
    return status


def list_sessions(root) -> List[Dict[str, Any]]:
    directory = _sessions_dir(root)
    if not directory.is_dir():
        return []
    return [
        session_status(root, path.name)
        for path in sorted(directory.iterdir())
        if (path / "spec.json").is_file()
    ]


def run_session(root, sid: str, jobs: int = 1,
                shard_timeout: Optional[float] = None) -> Dict[str, Any]:
    """Start (or resume): run the session's sweep and persist the report.

    Always runs with the service root's :class:`ResultStore` and
    ``resume=True``, so a rerun after a crash or interrupt only
    computes the missing shards.  An interrupt still writes the partial
    report (marked ``interrupted``) before re-raising
    :class:`~repro.conformance.faulty.check.SweepInterrupted`.
    """
    from repro.conformance.faulty.check import (
        SweepInterrupted,
        run_fault_sweeps,
    )
    from repro.march import library

    spec = load_spec(root, sid)
    names = (
        list(library.ALGORITHMS)
        if spec["algorithms"] == "all"
        else list(spec["algorithms"])
    )
    tests = [library.get(name) for name in names]
    store = ResultStore(root)
    try:
        report = run_fault_sweeps(
            [tuple(g) for g in spec["geometries"]],
            tests,
            per_kind=spec["per_kind"],
            seed=spec["seed"],
            full=spec["full"],
            compress=spec["compress"],
            max_ops=spec["max_ops"],
            jobs=jobs,
            engine=spec["engine"],
            mode=spec["mode"],
            store=store,
            resume=True,
            shard_timeout=shard_timeout,
        )
    except SweepInterrupted as interrupt:
        _write_report(root, sid, interrupt.report.to_json())
        raise
    payload = report.to_json()
    _write_report(root, sid, payload)
    return payload


def collect_session(root, sid: str) -> Dict[str, Any]:
    """Collect: the finished report (raises until the run completed)."""
    report = load_report(root, sid)
    if report is None:
        raise KeyError(
            f"session {sid!r} has no report yet; run it first"
        )
    return report


def _write_report(root, sid: str, payload: Dict[str, Any]) -> None:
    directory = _sessions_dir(root) / sid
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / "report.json", "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
