"""BIST-as-a-service: the crash-tolerant job layer under every sweep.

The paper's programmable controllers exist to keep memory testing
dependable in the field; this package keeps the *harness* dependable at
the same standard.  :mod:`~repro.service.engine` is the resilient
worker pool (timeouts, bounded retry with deterministic backoff, crash
quarantine, serial degradation), :mod:`~repro.service.store` the
content-hashed result cache that makes sweeps resumable and reruns
cheap, :mod:`~repro.service.chaos` the deterministic fault-injection
harness for the service itself, and :mod:`~repro.service.session` the
file-backed configure→start→poll→collect sessions behind
``repro serve``.  See ``docs/SERVICE.md``.
"""

from repro.service.chaos import (
    BEHAVIOURS,
    ChaosError,
    ChaosPlan,
    corrupt_store_entry,
)
from repro.service.engine import (
    EngineReport,
    Job,
    JobEngine,
    JobOutcome,
    JobsInterrupted,
    RetryPolicy,
    ServiceError,
)
from repro.service.session import (
    collect_session,
    list_sessions,
    run_session,
    session_id,
    session_status,
    submit_session,
)
from repro.service.store import (
    ResultStore,
    StoreKey,
    canonical_json,
    code_version,
    payload_digest,
)

__all__ = [
    "BEHAVIOURS",
    "ChaosError",
    "ChaosPlan",
    "EngineReport",
    "Job",
    "JobEngine",
    "JobOutcome",
    "JobsInterrupted",
    "ResultStore",
    "RetryPolicy",
    "ServiceError",
    "StoreKey",
    "canonical_json",
    "code_version",
    "collect_session",
    "corrupt_store_entry",
    "list_sessions",
    "payload_digest",
    "run_session",
    "session_id",
    "session_status",
    "submit_session",
]
