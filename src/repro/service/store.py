"""Content-hashed on-disk result store: sweeps resume, reruns are hits.

The store maps a **key** — the canonical JSON of every input that
determines a result: algorithm notations, geometry, fault specs, mode,
engine, shard bounds, and the :func:`code_version` digest of the
``repro`` package sources — to a JSON **payload** (typically one shard's
:meth:`~repro.conformance.faulty.check.FaultSweepReport.to_json`).  The
hashing discipline mirrors the golden-trace corpus
(:mod:`repro.conformance.corpus`): the key is identified by the SHA-256
of its canonical encoding, and every entry embeds a second SHA-256 over
its payload, re-verified on every read.  A corrupted entry (bit rot, a
torn write from a crashed process, the chaos harness) is therefore
*detected*, counted, evicted, and transparently recomputed by the
caller — never silently served.

Because the key embeds :func:`code_version`, any edit to the package
sources invalidates the whole cache: a stale result can never outlive
the code that produced it.  Writes are atomic (temp file +
``os.replace`` in the same directory), so a SIGKILL mid-``put`` leaves
either the complete previous entry or no entry — both safe.

Layout under the store root::

    entries/<digest[:2]>/<digest>.json    one entry per key
    sessions/<session-id>/                ``repro serve`` sessions
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

#: Store entry schema; bumped on incompatible layout changes (a schema
#: mismatch reads as a miss, so old stores age out instead of erroring).
SCHEMA = 1

_CODE_VERSION: Optional[str] = None


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def payload_digest(payload: Any) -> str:
    """SHA-256 over the canonical encoding of ``payload``."""
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()


def code_version() -> str:
    """Digest of every ``repro`` source file (cached per process).

    Keying cache entries by this digest means a re-run after *any* code
    change recomputes from scratch — the cheap, always-correct
    invalidation rule.  ~1 MB of sources hash in milliseconds, once.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = pathlib.Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()
    return _CODE_VERSION


@dataclass(frozen=True)
class StoreKey:
    """A canonicalised key and its identifying digest."""

    fields: str  # canonical JSON of the key fields
    digest: str  # sha256(fields)

    def to_dict(self) -> Dict[str, Any]:
        return json.loads(self.fields)


class ResultStore:
    """The on-disk store (see the module docstring).

    Counters (``hits``/``misses``/``corruptions``/``puts``) accumulate
    over the instance's lifetime and feed the sweep reports' service
    telemetry and ``bench_service``'s cache-hit-rate measurement.
    """

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self.entries_dir = self.root / "entries"
        self.entries_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corruptions = 0
        self.puts = 0

    # -- keys --------------------------------------------------------------

    def key(self, **fields: Any) -> StoreKey:
        """Build a key from JSON-serialisable fields.

        ``schema`` and ``code`` (the :func:`code_version` digest) are
        always folded in, so callers only name the *workload* inputs.
        """
        fields.setdefault("schema", SCHEMA)
        fields.setdefault("code", code_version())
        encoded = canonical_json(fields)
        return StoreKey(
            fields=encoded,
            digest=hashlib.sha256(encoded.encode("utf-8")).hexdigest(),
        )

    def _path(self, key: StoreKey) -> pathlib.Path:
        return self.entries_dir / key.digest[:2] / f"{key.digest}.json"

    # -- access ------------------------------------------------------------

    def get(self, key: StoreKey) -> Optional[Any]:
        """The stored payload, or ``None`` on miss *or* corruption.

        Every read re-verifies the embedded payload hash; an entry that
        fails to parse, carries a stale schema, belongs to a different
        key (hash collision in the path — practically impossible, still
        checked), or hashes differently than recorded is counted as a
        corruption, evicted, and reported as a miss so the caller
        recomputes.
        """
        path = self._path(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self._evict(path)
            self.corruptions += 1
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != SCHEMA
            or entry.get("key") != key.fields
            or entry.get("sha256") != payload_digest(entry.get("payload"))
        ):
            self._evict(path)
            self.corruptions += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry["payload"]

    def put(self, key: StoreKey, payload: Any) -> pathlib.Path:
        """Store ``payload`` under ``key`` atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": SCHEMA,
            "key": key.fields,
            "sha256": payload_digest(payload),
            "payload": payload,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as handle:
            json.dump(entry, handle, indent=2)
            handle.write("\n")
        os.replace(tmp, path)
        self.puts += 1
        return path

    def contains(self, key: StoreKey) -> bool:
        return self._path(key).exists()

    def forget(self, key: StoreKey) -> bool:
        """Drop one entry (used to expire checkpoints); True if it was
        present."""
        path = self._path(key)
        if path.exists():
            self._evict(path)
            return True
        return False

    def entry_paths(self) -> Iterator[pathlib.Path]:
        """Every entry file currently in the store."""
        yield from sorted(self.entries_dir.glob("*/*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self.entry_paths())

    @staticmethod
    def _evict(path: pathlib.Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corruptions": self.corruptions,
            "puts": self.puts,
        }
