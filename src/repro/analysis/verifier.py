"""Verifier entry points: run the full analysis pipeline on a program.

The programmable architectures accept arbitrary user-supplied programs
at test time, so a malformed program can hang the controller or
silently lose coverage — failure modes the hardwired baselines cannot
have.  :func:`verify_program` rejects such programs *before* anything
runs: it builds the control-flow graph, abstractly interprets the
controller (proving termination and an exact cycle bound), and applies
the rule catalogue; :func:`verify_march` lints an algorithm before it
is even assembled.

Wired in at three layers:

* :func:`repro.core.microcode.assembler.assemble` verifies by default
  and raises :class:`VerificationError` on error-severity findings;
* :class:`repro.core.microcode.controller.MicrocodeBistController`
  verifies every program load;
* the ``repro lint`` CLI subcommand prints the full report.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.analysis.cfg import build_cfg
from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.interpreter import interpret
from repro.analysis.march_rules import run_march_rules
from repro.analysis.progfsm_cfg import build_fsm_cfg, interpret_fsm
from repro.analysis.progfsm_rules import FsmProgramAnalysis, run_fsm_rules
from repro.analysis.rules import ProgramAnalysis, run_program_rules
from repro.core.controller import ControllerCapabilities
from repro.core.microcode.assembler import AssemblyError, MicrocodeProgram
from repro.core.progfsm.compiler import FsmProgram
from repro.march.test import MarchTest


class VerificationError(AssemblyError):
    """A program failed static verification with error-severity findings.

    Attributes:
        report: the full :class:`DiagnosticReport`.
    """

    def __init__(self, report: DiagnosticReport) -> None:
        self.report = report
        errors = report.errors
        detail = "; ".join(str(d) for d in errors[:3])
        if len(errors) > 3:
            detail += f"; … {len(errors) - 3} more"
        super().__init__(
            f"program {report.name!r} failed verification with "
            f"{len(errors)} error(s): {detail}"
        )


def verify_program(
    program: MicrocodeProgram,
    capabilities: Optional[ControllerCapabilities] = None,
    storage_rows: Optional[int] = None,
) -> DiagnosticReport:
    """Statically verify a microcode program.

    Args:
        program: the program to analyse.
        capabilities: target controller geometry; enables the
            capability-mismatch rules and the termination/cycle-bound
            proof (which needs the background and port counts).
        storage_rows: explicit storage depth Z to check the program
            against; ``None`` assumes the controller's auto-sizing.

    Returns:
        The diagnostic report (program rules plus march-level rules on
        the program's source algorithm, when it carries one).
    """
    cfg = build_cfg(program)
    interpretation = (
        interpret(program, capabilities, storage_rows=storage_rows)
        if capabilities is not None
        else None
    )
    analysis = ProgramAnalysis(
        program=program,
        cfg=cfg,
        interpretation=interpretation,
        capabilities=capabilities,
        storage_rows=storage_rows,
    )
    report = DiagnosticReport(name=program.name)
    report.extend(run_program_rules(analysis))
    if program.source is not None:
        report.extend(run_march_rules(program.source, target="microcode"))
    return report


def verify_fsm_program(
    program: FsmProgram,
    capabilities: Optional[ControllerCapabilities] = None,
    buffer_rows: Optional[int] = None,
) -> DiagnosticReport:
    """Statically verify an upper-buffer (programmable FSM) program.

    The progfsm mirror of :func:`verify_program`: builds the row-level
    control-flow graph, abstractly interprets the upper controller
    (termination + exact trace-cycle proof), and applies the ``PF``
    rule catalogue plus the march-level rules on the program's source
    algorithm.

    Args:
        program: the compiled upper-buffer program.
        capabilities: target controller geometry; enables the
            capability/loop-row rules and the termination proof.
        buffer_rows: explicit circular-buffer depth to check the program
            against; ``None`` checks the default depth advisorily (the
            buffer never auto-grows, but a deeper one can be built).
    """
    cfg = build_fsm_cfg(program)
    interpretation = (
        interpret_fsm(program, capabilities)
        if capabilities is not None
        else None
    )
    analysis = FsmProgramAnalysis(
        program=program,
        cfg=cfg,
        interpretation=interpretation,
        capabilities=capabilities,
        buffer_rows=buffer_rows,
    )
    report = DiagnosticReport(name=program.name)
    report.extend(run_fsm_rules(analysis))
    if program.source is not None:
        report.extend(run_march_rules(program.source, target="progfsm"))
    return report


def verify_march(
    test: MarchTest, target: Optional[str] = "microcode"
) -> DiagnosticReport:
    """Lint a march algorithm before assembly/compilation.

    Args:
        test: the algorithm.
        target: ``"microcode"``, ``"progfsm"`` or ``None`` — controls
            target-dependent severities (see
            :mod:`repro.analysis.march_rules`).
    """
    report = DiagnosticReport(name=test.name)
    report.extend(run_march_rules(test, target=target))
    return report


def verify_coverage(test: MarchTest) -> DiagnosticReport:
    """Lint a march algorithm's *fault coverage* statically.

    Certifies the test with the coverage prover over the full standard
    universe on the lint geometry and reports every proved escape
    (``CV`` rules; see :mod:`repro.analysis.coverage_rules`).
    """
    from repro.analysis.coverage_rules import run_coverage_rules

    report = DiagnosticReport(name=test.name)
    report.extend(run_coverage_rules(test))
    return report


def assert_verified(
    program_or_test: Union[MicrocodeProgram, FsmProgram, MarchTest],
    capabilities: Optional[ControllerCapabilities] = None,
    storage_rows: Optional[int] = None,
) -> DiagnosticReport:
    """Verify and raise :class:`VerificationError` on errors."""
    if isinstance(program_or_test, MarchTest):
        report = verify_march(program_or_test)
    elif isinstance(program_or_test, FsmProgram):
        report = verify_fsm_program(
            program_or_test, capabilities, buffer_rows=storage_rows
        )
    else:
        report = verify_program(
            program_or_test, capabilities, storage_rows=storage_rows
        )
    report.raise_on_errors()
    return report
