"""Coverage-level lint rules (``CV…``).

These lint a :class:`~repro.march.test.MarchTest` for *fault coverage*
statically: the algorithm is certified by the coverage prover
(:func:`repro.analysis.coverage.certify`) over the full standard fault
universe on a fixed small lint geometry, and each rule reports a fault
kind the test provably misses — with the textbook detection condition
(:mod:`repro.faults.conditions`) as the hint.  Because the prover's
verdicts are exact (cross-validated against simulation by
``check_coverage_conformance`` and fuzz identity (f)), a ``CV`` finding
is a *proof* of an escape, not a heuristic.

Severities grade by how damning the gap is: missing SAF/TF coverage
(ERROR-adjacent but still a legitimate design choice for e.g. a raw
retention test) warns; the specialised kinds (SOF, DRF, coupling, AF,
NPSF, read faults, PAF) are advisory.  ``CV011`` is the exception —
a test *named* after a library algorithm must cover every kind the
library algorithm covers, so a gap there is an ERROR ("claims March C
but the CFid condition is unsatisfied").
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.rules import REGISTRY, rule
from repro.faults.conditions import condition_for
from repro.march.element import MarchElement
from repro.march.test import MarchTest

#: The geometry coverage lint certifies on: big enough that every fault
#: kind of the standard universe exists (multi-word, word-oriented,
#: multi-port), small enough that certification takes milliseconds.
LINT_GEOMETRY: Tuple[int, int, int] = (4, 2, 2)


class CoverageAnalysis:
    """Everything a coverage-level rule may inspect.

    Builds the certificate lazily-once per lint run: the full standard
    universe (NPSF included) on :data:`LINT_GEOMETRY`.
    """

    def __init__(self, test: MarchTest) -> None:
        from repro.analysis.coverage import certify

        self.test = test
        n_words, width, ports = LINT_GEOMETRY
        self.certificate = certify(test, n_words, width=width, ports=ports)

    def gap(self, *kinds: str) -> Dict[str, int]:
        """Escape count per kind, for kinds with at least one escape."""
        by_kind = self.certificate.by_kind()
        out: Dict[str, int] = {}
        for kind in kinds:
            counts = by_kind.get(kind)
            if counts and counts["not-covered"]:
                out[kind] = counts["not-covered"]
        return out


def run_coverage_rules(
    test: MarchTest, target: Optional[str] = None
) -> List[Diagnostic]:
    """Run every coverage-level rule over one algorithm."""
    analysis = CoverageAnalysis(test)
    diagnostics: List[Diagnostic] = []
    for spec in sorted(REGISTRY.values(), key=lambda s: s.rule_id):
        if spec.scope != "coverage":
            continue
        diagnostics.extend(spec.build(f) for f in spec.check(analysis, target))
    return diagnostics


def _hint(kind: str) -> Optional[str]:
    condition = condition_for(kind)
    if condition is None:
        return None
    return f"detection condition ({condition.citation}): {condition.condition}"


def _gap_finding(
    analysis: CoverageAnalysis, label: str, *kinds: str
) -> Iterator[Tuple]:
    gaps = analysis.gap(*kinds)
    if not gaps:
        return
    total = sum(gaps.values())
    detail = ", ".join(f"{count} {kind}" for kind, count in sorted(gaps.items()))
    example = next(
        v for v in analysis.certificate.escapes()
        if v.kind in gaps
    )
    yield (
        Location(),
        f"proved escape of {total} {label} fault(s) on "
        f"{'x'.join(str(g) for g in LINT_GEOMETRY)} ({detail}); "
        f"e.g. {example.spec or example.description}",
        _hint(sorted(gaps)[0]),
    )


@rule("CV001", Severity.ERROR, "march test performs no reads",
      scope="coverage")
def _no_reads(analysis: CoverageAnalysis, target: Optional[str]) -> Iterator:
    """A test without reads observes nothing: every fault of every kind
    escapes, whatever the writes do."""
    has_read = any(
        isinstance(item, MarchElement) and item.reads
        for item in analysis.test.items
    )
    if not has_read:
        yield (
            Location(),
            "no element contains a read: the test cannot detect any "
            "fault (all verdicts are not-covered)",
            "add verifying reads, e.g. turn ⇕(w0) into ⇕(w0);⇕(r0)",
        )


@rule("CV002", Severity.WARNING, "stuck-at faults escape", scope="coverage")
def _saf_gap(analysis: CoverageAnalysis, target: Optional[str]) -> Iterator:
    yield from _gap_finding(analysis, "stuck-at", "SAF")


@rule("CV003", Severity.WARNING, "transition faults escape", scope="coverage")
def _tf_gap(analysis: CoverageAnalysis, target: Optional[str]) -> Iterator:
    yield from _gap_finding(analysis, "transition", "TF")


@rule("CV004", Severity.INFO, "stuck-open faults escape", scope="coverage")
def _sof_gap(analysis: CoverageAnalysis, target: Optional[str]) -> Iterator:
    yield from _gap_finding(analysis, "stuck-open", "SOF")


@rule("CV005", Severity.INFO, "data-retention faults escape",
      scope="coverage")
def _drf_gap(analysis: CoverageAnalysis, target: Optional[str]) -> Iterator:
    yield from _gap_finding(analysis, "data-retention", "DRF")


@rule("CV006", Severity.INFO, "read faults escape", scope="coverage")
def _read_gap(analysis: CoverageAnalysis, target: Optional[str]) -> Iterator:
    yield from _gap_finding(analysis, "read", "IRF", "RDF", "DRDF")


@rule("CV007", Severity.INFO, "coupling faults escape", scope="coverage")
def _coupling_gap(
    analysis: CoverageAnalysis, target: Optional[str]
) -> Iterator:
    yield from _gap_finding(analysis, "coupling", "CFin", "CFid", "CFst")


@rule("CV008", Severity.INFO, "address-decoder faults escape",
      scope="coverage")
def _af_gap(analysis: CoverageAnalysis, target: Optional[str]) -> Iterator:
    yield from _gap_finding(
        analysis, "address-decoder", "AF1", "AF2", "AF3", "AF4"
    )


@rule("CV009", Severity.INFO, "neighbourhood pattern sensitive faults escape",
      scope="coverage")
def _npsf_gap(analysis: CoverageAnalysis, target: Optional[str]) -> Iterator:
    yield from _gap_finding(analysis, "pattern-sensitive", "PNPSF", "ANPSF")


@rule("CV010", Severity.INFO, "port-access faults escape", scope="coverage")
def _paf_gap(analysis: CoverageAnalysis, target: Optional[str]) -> Iterator:
    yield from _gap_finding(analysis, "port-access", "PAF")


@rule("CV011", Severity.ERROR, "claimed library coverage violated",
      scope="coverage")
def _claims_violated(
    analysis: CoverageAnalysis, target: Optional[str]
) -> Iterator:
    """A test named after a library algorithm claims its coverage.

    The claim set is the library algorithm's own certificate on the
    lint geometry (cached): every kind it fully covers, the same-named
    test must fully cover too.  Running the genuine library algorithm
    trivially satisfies this; a modified body that kept the name fails
    with the violated kinds called out.
    """
    from repro.march.library import ALGORITHMS

    reference = ALGORITHMS.get(analysis.test.name)
    if reference is None or reference.items == analysis.test.items:
        return
    claims = _library_claims(analysis.test.name)
    certificate = analysis.certificate
    violated = sorted(
        kind
        for kind in claims
        if certificate.kind_fully_covered(kind) is not True
    )
    if violated:
        yield (
            Location(),
            f"claims {analysis.test.name!r} but the "
            f"{', '.join(violated)} detection condition(s) are "
            f"unsatisfied (library algorithm covers these fully on "
            f"{'x'.join(str(g) for g in LINT_GEOMETRY)})",
            _hint(violated[0]),
        )


#: Library claim sets, certified once per process.
_CLAIMS_CACHE: Dict[str, Tuple[str, ...]] = {}


def _library_claims(name: str) -> Tuple[str, ...]:
    """Kinds the library algorithm ``name`` fully covers on the lint
    geometry."""
    from repro.analysis.coverage import certify
    from repro.march.library import ALGORITHMS

    if name not in _CLAIMS_CACHE:
        n_words, width, ports = LINT_GEOMETRY
        certificate = certify(
            ALGORITHMS[name], n_words, width=width, ports=ports
        )
        _CLAIMS_CACHE[name] = tuple(
            kind
            for kind in certificate.by_kind()
            if certificate.kind_fully_covered(kind) is True
        )
    return _CLAIMS_CACHE[name]


@rule("CV013", Severity.ERROR, "coverage is vacuous: fault-free run fails",
      scope="coverage")
def _vacuous_coverage(
    analysis: CoverageAnalysis, target: Optional[str]
) -> Iterator:
    """The test fails reads on a perfectly good memory (e.g. it expects
    a data background it never wrote), so *every* fault counts as
    detected under the sweep's any-failing-read criterion.  The
    certificate's covered verdicts carry no design information."""
    if not analysis.certificate.fault_free_consistent:
        yield (
            Location(),
            "the fault-free run fails reads on "
            f"{'x'.join(str(g) for g in LINT_GEOMETRY)}: every fault is "
            "trivially 'covered', the certificate proves nothing about "
            "detection quality",
            "fix the read expectations first (see the MA003 findings of "
            "repro lint --target march)",
        )


@rule("CV012", Severity.INFO, "undecided coverage verdicts",
      scope="coverage")
def _unknown_verdicts(
    analysis: CoverageAnalysis, target: Optional[str]
) -> Iterator:
    """The prover declined to decide some faults (unregistered fault
    types or a projection failure) — honesty, not an escape."""
    unknown = analysis.certificate.unknown_count
    if unknown:
        yield (
            Location(),
            f"{unknown} fault(s) have an unknown static verdict "
            f"({100.0 * analysis.certificate.unknown_rate:.1f}% of the "
            "universe); simulated sweeps remain the authority for them",
            "see docs/ANALYSIS.md, 'static vs simulated coverage'",
        )
