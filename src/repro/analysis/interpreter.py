"""Abstract interpretation of microcode programs.

Proves termination and computes the **exact** cycle count of a program
without running the simulator.  The concrete controller state is

    (IC, branch register, repeat bit, reference register,
     address generator, data generator, port sequencer)

and a full run costs one cycle per executed instruction — O(N) cycles
per march element for an N-word memory.  The abstract interpreter
collapses the only N-dependent part, the per-address element sweep:

* the address generator is abstracted away entirely — a ``LOOP`` row at
  index *i* with branch register *b* executes the rows ``b..i`` once per
  address, so it contributes ``(i - b + 1) × N`` cycles in one step;
* the reference register's complement bits never influence control flow
  or cycle count, so only the repeat *bit* is kept;
* the data and port generators reduce to their counter values, bounded
  by the capability-derived background count and port count.

What remains is a finite deterministic transition system over

    (IC, branch, repeat bit, background index, port index)

with at most ``Z × (Z+1) × 2 × B × P`` states.  Executing it step by
step therefore *decides* termination: reaching EXIT proves the program
halts (with an exact cycle total), revisiting a state proves it never
does.  Programs whose element bodies are not straight-line ``NOP`` runs
(the only shape the collapsed sweep formula covers — and the only shape
the assembler emits) are reported as UNKNOWN rather than guessed at.

The collapse is exact because the simulator's trace semantics make each
sweep cost precisely ``span × N``: the walker already counted the body
rows once (the first address iteration), so the ``LOOP`` step adds
``span × (N-1) + 1``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Set, Tuple, Union

from repro.core.controller import ControllerCapabilities
from repro.core.microcode.assembler import MicrocodeProgram
from repro.core.microcode.instruction import MicroInstruction
from repro.core.microcode.isa import ConditionOp
from repro.march.backgrounds import background_count

#: Abstract-step safety valve (the state space bounds the walk anyway;
#: this guards against pathological Z² blowups on huge programs).
MAX_STEPS = 200_000


class Verdict(enum.Enum):
    """Outcome of the abstract interpretation."""

    TERMINATES = "terminates"   # halts; ``cycles`` is exact
    DIVERGES = "diverges"       # provably never halts
    UNKNOWN = "unknown"         # control flow outside the analyzable shape


@dataclass(frozen=True)
class AbstractState:
    """Collapsed controller state between abstract steps."""

    ic: int
    branch: int
    repeat: bool
    background: int
    port: int


@dataclass(frozen=True)
class Interpretation:
    """Result of :func:`interpret`.

    Attributes:
        verdict: termination verdict.
        cycles: exact executed-instruction count (TERMINATES only).
        reason: explanation for DIVERGES / UNKNOWN verdicts.
        location: instruction index the reason points at, if any.
        states_visited: size of the explored abstract state space.
    """

    verdict: Verdict
    cycles: Optional[int] = None
    reason: str = ""
    location: Optional[int] = None
    states_visited: int = 0

    @property
    def terminates(self) -> Optional[bool]:
        if self.verdict is Verdict.TERMINATES:
            return True
        if self.verdict is Verdict.DIVERGES:
            return False
        return None


def interpret(
    program: Union[MicrocodeProgram, Sequence[MicroInstruction]],
    capabilities: ControllerCapabilities,
    storage_rows: Optional[int] = None,
) -> Interpretation:
    """Abstractly execute ``program`` against a memory geometry.

    Args:
        program: the microcode program (or raw instruction list).
        capabilities: geometry the controller targets; supplies the
            address-space size, background count and port count.
        storage_rows: storage depth Z.  The controller's walker ends a
            test when the IC passes the last *program* row (padding rows
            never execute), so Z only matters when it is smaller than
            the program — the faithful model of an overflowing load.

    Returns:
        An :class:`Interpretation`; when the verdict is ``TERMINATES``
        the ``cycles`` field equals the simulator's executed-instruction
        count exactly (the test suite checks this identity property).
    """
    if isinstance(program, MicrocodeProgram):
        instructions: Tuple[MicroInstruction, ...] = tuple(program.instructions)
    else:
        instructions = tuple(program)
    limit = len(instructions)
    if storage_rows is not None:
        limit = min(limit, storage_rows)
    n_words = capabilities.n_words
    n_backgrounds = background_count(capabilities.width)
    n_ports = capabilities.ports

    def fetch(ic: int) -> MicroInstruction:
        return instructions[ic]

    ic = 0
    branch = 0
    repeat = False
    bg = 0
    port = 0
    cycles = 0
    visited: Set[AbstractState] = set()

    for _ in range(MAX_STEPS):
        if ic >= limit:
            return Interpretation(
                Verdict.TERMINATES, cycles=cycles,
                reason="instruction addresses exhausted",
                states_visited=len(visited),
            )
        state = AbstractState(ic, branch, repeat, bg, port)
        if state in visited:
            return Interpretation(
                Verdict.DIVERGES,
                reason=(f"controller state (ic={ic}, branch={branch}, "
                        f"repeat={int(repeat)}, background={bg}, "
                        f"port={port}) recurs — the program loops forever"),
                location=ic,
                states_visited=len(visited),
            )
        visited.add(state)
        instr = fetch(ic)
        cond = instr.cond

        if cond is ConditionOp.NOP:
            cycles += 1
            ic += 1
        elif cond is ConditionOp.LOOP:
            if branch > ic:
                return Interpretation(
                    Verdict.UNKNOWN,
                    reason=(f"LOOP at {ic} reached with branch register "
                            f"{branch} ahead of it"),
                    location=ic, states_visited=len(visited),
                )
            span = ic - branch + 1
            body = [fetch(row) for row in range(branch, ic)]
            if any(row.cond is not ConditionOp.NOP for row in body):
                return Interpretation(
                    Verdict.UNKNOWN,
                    reason=(f"LOOP at {ic} sweeps rows {branch}..{ic - 1} "
                            "that are not a straight NOP run"),
                    location=ic, states_visited=len(visited),
                )
            if any(row.addr_inc for row in body):
                return Interpretation(
                    Verdict.UNKNOWN,
                    reason=(f"element body before LOOP at {ic} steps the "
                            "address mid-sweep (ADDR_INC on a non-final "
                            "row)"),
                    location=ic, states_visited=len(visited),
                )
            advances = instr.is_memory_op and instr.addr_inc
            if not instr.is_memory_op:
                return Interpretation(
                    Verdict.UNKNOWN,
                    reason=(f"LOOP at {ic} is not a memory operation; the "
                            "sweep never restarts the address generator"),
                    location=ic, states_visited=len(visited),
                )
            if not advances and n_words > 1:
                return Interpretation(
                    Verdict.DIVERGES,
                    reason=(f"LOOP at {ic} never increments the address "
                            f"generator, so Last Address never asserts on "
                            f"a {n_words}-word memory"),
                    location=ic, states_visited=len(visited),
                )
            # Body rows were already counted once (first address); the
            # remaining (N-1) iterations plus the LOOP row's N executions
            # add span*(N-1) + 1.
            cycles += span * (n_words - 1) + 1
            branch = ic + 1
            ic += 1
        elif cond is ConditionOp.SAVE:
            cycles += 1
            branch = ic + 1
            ic += 1
        elif cond is ConditionOp.HOLD:
            cycles += 1
            branch = ic + 1
            ic += 1
        elif cond is ConditionOp.REPEAT:
            cycles += 1
            if repeat:
                repeat = False
                branch = ic + 1
                ic += 1
            else:
                repeat = True
                ic = 1
                branch = 1
        elif cond is ConditionOp.NEXT_BG:
            cycles += 1
            if bg >= n_backgrounds - 1:
                bg = 0          # Last Data: reset and fall through
                branch = ic + 1
                ic += 1
            else:
                bg += 1
                ic = 0
                branch = 0
        elif cond is ConditionOp.INC_PORT:
            cycles += 1
            if port >= n_ports - 1:
                return Interpretation(
                    Verdict.TERMINATES, cycles=cycles,
                    reason="Last Port terminate",
                    states_visited=len(visited),
                )
            port += 1
            bg = 0
            ic = 0
            branch = 0
        elif cond is ConditionOp.TERMINATE:
            cycles += 1
            return Interpretation(
                Verdict.TERMINATES, cycles=cycles, reason="Terminate",
                states_visited=len(visited),
            )
        else:  # pragma: no cover — the ISA is closed
            return Interpretation(
                Verdict.UNKNOWN, reason=f"unhandled condition {cond!r}",
                location=ic, states_visited=len(visited),
            )
    return Interpretation(
        Verdict.UNKNOWN,
        reason=f"no verdict within {MAX_STEPS} abstract steps",
        states_visited=len(visited),
    )


def cycle_bound(
    program: Union[MicrocodeProgram, Sequence[MicroInstruction]],
    capabilities: ControllerCapabilities,
    storage_rows: Optional[int] = None,
) -> Optional[int]:
    """Exact cycle count when provable, else ``None``."""
    return interpret(program, capabilities, storage_rows=storage_rows).cycles
