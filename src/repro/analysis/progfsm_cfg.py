"""Control-flow graph and abstract interpreter for upper-buffer programs.

The programmable FSM architecture's second half of the verification
story: where :mod:`repro.analysis.cfg` models the microcode decoder,
this module models the upper controller of Fig. 4(b) — a circular
buffer whose row pointer advances on the lower FSM's *Next Instruction*
signal and whose two loop rows implement the background (path A) and
port (path B) loops.

Row semantics, following
:meth:`repro.core.progfsm.controller.ProgrammableFsmBistController.trace`:

=============  ==========================================================
element row    run one march element (lower FSM walk), then advance the
               pointer; advancing past the last used row ends the test.
``LOOP_BG``    two-way: wrap to row 0 while data backgrounds remain
               (path A); on *Last Data* reset the background generator
               and advance — past the last row, the test ends.
``LOOP_PORT``  two-way: activate the next port, reset the background
               generator and wrap to row 0 (path B); on *Last Port* the
               test ends.
=============  ==========================================================

The abstract interpreter collapses the only N-dependent part — the
lower FSM's per-address element walk.  An element row whose SM pattern
has L operations costs exactly ``hold + 3 + N x L`` trace cycles: one
optional pause cycle, the IDLE and RESET steps, L operation cycles per
address, and the DONE step.  What remains is a finite deterministic
transition system over ``(row pointer, background, port)`` with at most
``rows x B x P`` states, so stepping it *decides* termination — exactly
as the microcode interpreter does over ``(IC, branch, repeat,
background, port)``.

Two asymmetries against the microcode trace semantics, both faithful to
the controller model: a *Last Data* ``LOOP_BG`` that advances past the
program end returns **without** emitting a trace entry (0 cycles), while
a *Last Port* ``LOOP_PORT`` emits its entry first (1 cycle).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.interpreter import Interpretation, MAX_STEPS, Verdict
from repro.core.controller import ControllerCapabilities
from repro.core.progfsm.compiler import FsmProgram
from repro.core.progfsm.instruction import DataControl, FsmInstruction
from repro.core.progfsm.march_elements import SM_PATTERNS
from repro.march.backgrounds import background_count

#: The virtual exit node (shared convention with the microcode CFG).
EXIT = None


class FsmEdgeKind(enum.Enum):
    """Why control may flow along an upper-buffer edge."""

    ADVANCE = "advance"       # Next Instruction: pointer steps one row
    PATH_A = "path-a"         # LOOP_BG wrap while backgrounds remain
    PATH_B = "path-b"         # LOOP_PORT wrap while ports remain
    LAST_DATA = "last-data"   # LOOP_BG falls through on Last Data
    END = "end"               # test end (Last Port / buffer wrap)


@dataclass(frozen=True)
class FsmEdge:
    """One control-flow edge ``src -> dst`` (``dst is None`` = EXIT)."""

    src: int
    dst: Optional[int]
    kind: FsmEdgeKind

    def __str__(self) -> str:
        dst = "EXIT" if self.dst is EXIT else str(self.dst)
        return f"{self.src} -> {dst} [{self.kind.value}]"


def _instructions(
    program: Union[FsmProgram, Sequence[FsmInstruction]],
) -> Tuple[FsmInstruction, ...]:
    if isinstance(program, FsmProgram):
        return tuple(program.instructions)
    return tuple(program)


@dataclass(frozen=True)
class FsmControlFlowGraph:
    """CFG of one upper-buffer program.

    Attributes:
        instructions: the buffer rows the graph covers.
        edges: all edges, in row order.
    """

    instructions: Tuple[FsmInstruction, ...]
    edges: Tuple[FsmEdge, ...]

    def successors(self, index: int) -> List[FsmEdge]:
        return [edge for edge in self.edges if edge.src == index]

    def predecessors(self, index: Optional[int]) -> List[FsmEdge]:
        return [edge for edge in self.edges if edge.dst == index]

    def reachable(self) -> Set[int]:
        """Row indices reachable from the entry (row 0)."""
        if not self.instructions:
            return set()
        seen: Set[int] = set()
        frontier = [0]
        by_src: Dict[int, List[FsmEdge]] = {}
        for edge in self.edges:
            by_src.setdefault(edge.src, []).append(edge)
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            for edge in by_src.get(node, ()):
                if edge.dst is not EXIT and edge.dst not in seen:
                    frontier.append(edge.dst)
        return seen

    def unreachable(self) -> List[int]:
        reachable = self.reachable()
        return [i for i in range(len(self.instructions)) if i not in reachable]

    def terminating_edges(self) -> List[FsmEdge]:
        """All edges into EXIT."""
        return self.predecessors(EXIT)


def build_fsm_cfg(
    program: Union[FsmProgram, Sequence[FsmInstruction]],
) -> FsmControlFlowGraph:
    """Build the control-flow graph of an upper-buffer program."""
    instructions = _instructions(program)
    n = len(instructions)
    edges: List[FsmEdge] = []

    def advance(index: int, kind: FsmEdgeKind) -> FsmEdge:
        if index + 1 < n:
            return FsmEdge(index, index + 1, kind)
        return FsmEdge(index, EXIT, FsmEdgeKind.END)

    for index, instr in enumerate(instructions):
        if instr.is_element:
            edges.append(advance(index, FsmEdgeKind.ADVANCE))
        elif instr.data_ctrl is DataControl.LOOP_BG:
            edges.append(FsmEdge(index, 0, FsmEdgeKind.PATH_A))
            edges.append(advance(index, FsmEdgeKind.LAST_DATA))
        else:  # LOOP_PORT
            edges.append(FsmEdge(index, 0, FsmEdgeKind.PATH_B))
            edges.append(FsmEdge(index, EXIT, FsmEdgeKind.END))
    return FsmControlFlowGraph(instructions=instructions, edges=tuple(edges))


def element_cycles(instr: FsmInstruction, n_words: int) -> int:
    """Exact trace cycles one element-row execution costs.

    One optional hold (pause) cycle, one IDLE step, one RESET step, the
    SM pattern's L operations on each of the N addresses, and one DONE
    step: ``hold + 3 + N x L``.
    """
    pattern_length = len(SM_PATTERNS[instr.mode])
    return int(instr.hold) + 3 + n_words * pattern_length


def interpret_fsm(
    program: Union[FsmProgram, Sequence[FsmInstruction]],
    capabilities: ControllerCapabilities,
    max_steps: int = MAX_STEPS,
) -> Interpretation:
    """Abstractly execute an upper-buffer program against a geometry.

    Args:
        program: compiled :class:`FsmProgram` or raw instruction rows.
        capabilities: geometry the controller targets; supplies the
            address-space size, background count and port count.
        max_steps: abstract-step safety valve (the ``rows x B x P``
            state space bounds the walk anyway).

    Returns:
        An :class:`~repro.analysis.interpreter.Interpretation`; when the
        verdict is ``TERMINATES`` the ``cycles`` field equals the
        controller's trace length exactly (the test suite checks this
        identity, and ``repro fuzz`` re-checks it at corpus scale).
    """
    instructions = _instructions(program)
    rows = len(instructions)
    if rows == 0:
        return Interpretation(
            Verdict.TERMINATES, cycles=0, reason="empty program"
        )
    n_words = capabilities.n_words
    n_backgrounds = background_count(capabilities.width)
    n_ports = capabilities.ports

    pointer = 0
    background = 0
    port = 0
    cycles = 0
    visited: Set[Tuple[int, int, int]] = set()

    for _ in range(max_steps):
        state = (pointer, background, port)
        if state in visited:
            return Interpretation(
                Verdict.DIVERGES,
                reason=(f"upper-controller state (row={pointer}, "
                        f"background={background}, port={port}) recurs — "
                        "the program loops forever"),
                location=pointer,
                states_visited=len(visited),
            )
        visited.add(state)
        instr = instructions[pointer]

        if instr.is_element:
            cycles += element_cycles(instr, n_words)
            pointer += 1
            if pointer >= rows:
                return Interpretation(
                    Verdict.TERMINATES, cycles=cycles,
                    reason="buffer rows exhausted",
                    states_visited=len(visited),
                )
        elif instr.data_ctrl is DataControl.LOOP_BG:
            if background >= n_backgrounds - 1:
                # Last Data: reset the generator and advance.  Wrapping
                # past the program end returns before the trace entry is
                # emitted, so that final execution costs zero cycles.
                background = 0
                pointer += 1
                if pointer >= rows:
                    return Interpretation(
                        Verdict.TERMINATES, cycles=cycles,
                        reason="Last Data wrap past the program end",
                        states_visited=len(visited),
                    )
                cycles += 1
            else:
                background += 1
                cycles += 1
                pointer = 0
        else:  # LOOP_PORT
            cycles += 1
            if port >= n_ports - 1:
                return Interpretation(
                    Verdict.TERMINATES, cycles=cycles,
                    reason="Last Port test end",
                    states_visited=len(visited),
                )
            port += 1
            background = 0
            pointer = 0
    return Interpretation(
        Verdict.UNKNOWN,
        reason=f"no verdict within {max_steps} abstract steps",
        states_visited=len(visited),
    )


def fsm_cycle_bound(
    program: Union[FsmProgram, Sequence[FsmInstruction]],
    capabilities: ControllerCapabilities,
) -> Optional[int]:
    """Exact trace-cycle count when provable, else ``None``."""
    return interpret_fsm(program, capabilities).cycles
