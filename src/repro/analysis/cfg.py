"""Control-flow graph over microcode programs.

Nodes are instruction indices; one virtual EXIT node (``None``) models
test end.  Edges follow the decoder semantics of
:func:`repro.core.microcode.controller.decoder_outputs`:

=============  ============================================================
``NOP``        fall through to ``i+1``.
``SAVE``       fall through (the branch-register side effect is not a
               control transfer).
``LOOP``       two-way: back edge to the element start (the branch
               register's value, resolved statically — see
               :func:`loop_target`) while addresses remain, fall through
               on *Last Address*.
``REPEAT``     two-way: "Reset to 1" edge to instruction 1 on first
               execution, fall through on the second.
``NEXT_BG``    two-way: "Reset to 0" edge to instruction 0 while data
               backgrounds remain, fall through on *Last Data*.
``HOLD``       fall through once the pause timer expires.
``INC_PORT``   two-way: "Reset to 0" edge while ports remain, EXIT on
               *Last Port*.
``TERMINATE``  EXIT.
=============  ============================================================

Falling off the last instruction is modelled as an edge to EXIT: the
controller ends a test "by exhausting the allowed instruction addresses"
(the walker stops once the IC passes the last program row).

The branch register is runtime state, but in straight-line programs its
value at a ``LOOP`` is statically determined: every control-transfer
instruction re-seeds it with its own successor, so the loop target is
one past the nearest preceding non-``NOP`` instruction (or 0 at the
program head — the power-on branch-register value).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.microcode.assembler import MicrocodeProgram
from repro.core.microcode.instruction import MicroInstruction
from repro.core.microcode.isa import ConditionOp

#: The virtual exit node.
EXIT = None


class EdgeKind(enum.Enum):
    """Why control may flow along an edge."""

    FALLTHROUGH = "fallthrough"   # sequential IC increment
    LOOP_BACK = "loop-back"       # LOOP -> branch register (element sweep)
    RESET1 = "reset-1"            # REPEAT first execution -> instruction 1
    RESET0 = "reset-0"            # NEXT_BG / INC_PORT -> instruction 0
    END = "end"                   # Terminate signal / address exhaustion


@dataclass(frozen=True)
class Edge:
    """One control-flow edge ``src -> dst`` (``dst is None`` = EXIT)."""

    src: int
    dst: Optional[int]
    kind: EdgeKind

    def __str__(self) -> str:
        dst = "EXIT" if self.dst is EXIT else str(self.dst)
        return f"{self.src} -> {dst} [{self.kind.value}]"


def loop_target(instructions: Sequence[MicroInstruction], index: int) -> int:
    """Statically resolved branch-register value at a ``LOOP`` row.

    Scans backwards over the ``NOP`` rows forming the element body; the
    first non-``NOP`` row re-seeded the branch register with its own
    successor.  At the program head the power-on value 0 applies.
    """
    scan = index - 1
    while scan >= 0 and instructions[scan].cond is ConditionOp.NOP:
        scan -= 1
    return scan + 1


@dataclass(frozen=True)
class ControlFlowGraph:
    """CFG of one microcode program.

    Attributes:
        instructions: the program rows the graph covers.
        edges: all edges, in instruction order.
    """

    instructions: Tuple[MicroInstruction, ...]
    edges: Tuple[Edge, ...]

    def successors(self, index: int) -> List[Edge]:
        return [edge for edge in self.edges if edge.src == index]

    def predecessors(self, index: Optional[int]) -> List[Edge]:
        return [edge for edge in self.edges if edge.dst == index]

    def reachable(self) -> Set[int]:
        """Instruction indices reachable from the entry (row 0)."""
        if not self.instructions:
            return set()
        seen: Set[int] = set()
        frontier = [0]
        by_src: Dict[int, List[Edge]] = {}
        for edge in self.edges:
            by_src.setdefault(edge.src, []).append(edge)
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            for edge in by_src.get(node, ()):
                if edge.dst is not EXIT and edge.dst not in seen:
                    frontier.append(edge.dst)
        return seen

    def unreachable(self) -> List[int]:
        reachable = self.reachable()
        return [i for i in range(len(self.instructions)) if i not in reachable]

    def terminating_edges(self) -> List[Edge]:
        """All edges into EXIT."""
        return self.predecessors(EXIT)

    def exits_explicitly(self) -> bool:
        """Whether a reachable TERMINATE / INC_PORT ends the test (as
        opposed to running off the end of the storage)."""
        reachable = self.reachable()
        return any(
            edge.src in reachable
            and self.instructions[edge.src].cond
            in (ConditionOp.TERMINATE, ConditionOp.INC_PORT)
            for edge in self.terminating_edges()
        )


def build_cfg(
    program: Union[MicrocodeProgram, Sequence[MicroInstruction]],
) -> ControlFlowGraph:
    """Build the control-flow graph of a microcode program."""
    if isinstance(program, MicrocodeProgram):
        instructions: Tuple[MicroInstruction, ...] = tuple(program.instructions)
    else:
        instructions = tuple(program)
    n = len(instructions)
    edges: List[Edge] = []

    def fall(index: int, kind: EdgeKind = EdgeKind.FALLTHROUGH) -> Edge:
        if index + 1 < n:
            return Edge(index, index + 1, kind)
        return Edge(index, EXIT, EdgeKind.END)

    for index, instr in enumerate(instructions):
        cond = instr.cond
        if cond in (ConditionOp.NOP, ConditionOp.SAVE, ConditionOp.HOLD):
            edges.append(fall(index))
        elif cond is ConditionOp.LOOP:
            edges.append(
                Edge(index, loop_target(instructions, index), EdgeKind.LOOP_BACK)
            )
            edges.append(fall(index))
        elif cond is ConditionOp.REPEAT:
            if n > 1:
                edges.append(Edge(index, 1, EdgeKind.RESET1))
            edges.append(fall(index))
        elif cond is ConditionOp.NEXT_BG:
            edges.append(Edge(index, 0, EdgeKind.RESET0))
            edges.append(fall(index))
        elif cond is ConditionOp.INC_PORT:
            edges.append(Edge(index, 0, EdgeKind.RESET0))
            edges.append(Edge(index, EXIT, EdgeKind.END))
        elif cond is ConditionOp.TERMINATE:
            edges.append(Edge(index, EXIT, EdgeKind.END))
    return ControlFlowGraph(instructions=instructions, edges=tuple(edges))
