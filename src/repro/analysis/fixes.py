"""Mechanical autofixes for microcode lint findings (``repro lint --fix``).

Applies the fix *hints* of the mechanical rules, in an order where each
fix cannot re-introduce an earlier finding:

1. ``MC012`` — a symmetric source algorithm stored uncompressed is
   re-assembled with REPEAT compression (via the existing
   :func:`repro.march.properties.symmetric_split` discovery);
2. ``MC002`` — unreachable rows are dropped.  In decoder-legal programs
   dead rows are always a suffix behind the first reachable
   ``TERMINATE``/``INC_PORT`` (every other condition falls through), so
   dropping them never moves a loop target;
3. ``MC001`` — a program with no reachable terminator gets a
   ``TERMINATE`` row appended, making the fall-off termination explicit.

Anything the fixer cannot decide mechanically (divergence, capability
mismatches, bad pause shapes) is left for the report — ``--fix`` never
guesses at test *content*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.cfg import build_cfg
from repro.core.controller import ControllerCapabilities
from repro.core.microcode.assembler import MicrocodeProgram, assemble
from repro.core.microcode.instruction import MicroInstruction
from repro.core.microcode.isa import ConditionOp


@dataclass
class FixResult:
    """Outcome of :func:`apply_fixes`.

    Attributes:
        program: the fixed program (a new object; the input is never
            mutated).  Identical to the input when nothing applied.
        applied: human-readable description of each applied fix, in
            application order.
    """

    program: MicrocodeProgram
    applied: List[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.applied)


def _recompress(
    program: MicrocodeProgram,
    capabilities: Optional[ControllerCapabilities],
    applied: List[str],
) -> MicrocodeProgram:
    """MC012: re-assemble a symmetric, uncompressed program."""
    if capabilities is None or program.source is None:
        return program
    if any(
        row.cond is ConditionOp.REPEAT for row in program.instructions
    ):
        return program
    from repro.march.properties import symmetric_split

    split = symmetric_split(program.source, require_single_op_prefix=True)
    if split is None:
        return program
    compressed = assemble(
        program.source, capabilities, compress=True, verify=False
    )
    saved = len(program.instructions) - len(compressed.instructions)
    if saved <= 0:
        return program
    applied.append(
        f"MC012: re-compressed the symmetric second half ({split.aux} "
        f"complement) via REPEAT, saving {saved} storage rows"
    )
    return MicrocodeProgram(
        name=program.name,
        instructions=compressed.instructions,
        source=program.source,
        compressed=True,
        split=compressed.split,
    )


def _drop_dead_rows(
    program: MicrocodeProgram, applied: List[str]
) -> MicrocodeProgram:
    """MC002: remove rows the control-flow graph proves unreachable."""
    instructions = list(program.instructions)
    dropped: List[int] = []
    while instructions:
        unreachable = build_cfg(instructions).unreachable()
        if not unreachable:
            break
        # Drop from the back so earlier indices stay valid.
        for index in sorted(unreachable, reverse=True):
            dropped.append(index)
            del instructions[index]
    if not dropped:
        return program
    rows = ", ".join(str(i) for i in sorted(dropped))
    applied.append(f"MC002: dropped {len(dropped)} dead row(s) ({rows})")
    return MicrocodeProgram(
        name=program.name,
        instructions=instructions,
        source=program.source,
        compressed=program.compressed,
        split=program.split,
    )


def _append_terminator(
    program: MicrocodeProgram, applied: List[str]
) -> MicrocodeProgram:
    """MC001: make the fall-off termination explicit."""
    if not program.instructions or build_cfg(program).exits_explicitly():
        return program
    instructions = list(program.instructions)
    instructions.append(MicroInstruction(cond=ConditionOp.TERMINATE))
    applied.append(
        f"MC001: appended a TERMINATE row at {len(instructions) - 1}"
    )
    return MicrocodeProgram(
        name=program.name,
        instructions=instructions,
        source=program.source,
        compressed=program.compressed,
        split=program.split,
    )


def apply_fixes(
    program: MicrocodeProgram,
    capabilities: Optional[ControllerCapabilities] = None,
) -> FixResult:
    """Apply every mechanical fix that fires on ``program``.

    Args:
        program: the program to fix (never mutated).
        capabilities: target geometry, required for the MC012
            re-compression (the re-assembled tail depends on it);
            ``None`` skips that fix.

    Returns:
        A :class:`FixResult` with the fixed program and a description
        of each applied fix.  Re-verify the result to see what remains.
    """
    applied: List[str] = []
    fixed = _recompress(program, capabilities, applied)
    fixed = _drop_dead_rows(fixed, applied)
    fixed = _append_terminator(fixed, applied)
    return FixResult(program=fixed, applied=applied)
