"""Static verification and linting of BIST programs.

The paper's point is *programmability*: microcode words and upper-buffer
instructions are loaded at test time, so — unlike the hardwired
baselines — a malformed program can hang the controller or silently
lose fault coverage.  This package rejects bad programs before they run:

* :mod:`~repro.analysis.cfg` — control-flow graph over microcode
  programs, edges derived from the instruction-decoder semantics;
* :mod:`~repro.analysis.interpreter` — abstract interpretation over the
  collapsed controller state, *deciding* termination and computing the
  exact cycle count without running the simulator;
* :mod:`~repro.analysis.rules` / :mod:`~repro.analysis.march_rules` —
  the rule catalogue (``MC…`` program rules, ``MA…`` algorithm rules;
  see ``docs/ANALYSIS.md``);
* :mod:`~repro.analysis.verifier` — orchestration plus
  :class:`~repro.analysis.verifier.VerificationError`, raised by the
  assembler, the controller's program load and ``repro lint`` on
  error-severity findings.
"""

from repro.analysis.cfg import EXIT, ControlFlowGraph, Edge, EdgeKind, build_cfg
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Location,
    Severity,
)
from repro.analysis.interpreter import (
    Interpretation,
    Verdict,
    cycle_bound,
    interpret,
)
from repro.analysis.march_rules import run_march_rules
from repro.analysis.rules import (
    ProgramAnalysis,
    RuleSpec,
    rule_catalogue,
    run_program_rules,
)
from repro.analysis.verifier import (
    VerificationError,
    assert_verified,
    verify_march,
    verify_program,
)

__all__ = [
    "ControlFlowGraph",
    "Diagnostic",
    "DiagnosticReport",
    "Edge",
    "EdgeKind",
    "EXIT",
    "Interpretation",
    "Location",
    "ProgramAnalysis",
    "RuleSpec",
    "Severity",
    "Verdict",
    "VerificationError",
    "assert_verified",
    "build_cfg",
    "cycle_bound",
    "interpret",
    "rule_catalogue",
    "run_march_rules",
    "run_program_rules",
    "verify_march",
    "verify_program",
]
