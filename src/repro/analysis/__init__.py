"""Static verification and linting of BIST programs.

The paper's point is *programmability*: microcode words and upper-buffer
instructions are loaded at test time, so — unlike the hardwired
baselines — a malformed program can hang the controller or silently
lose fault coverage.  This package rejects bad programs before they run:

* :mod:`~repro.analysis.cfg` — control-flow graph over microcode
  programs, edges derived from the instruction-decoder semantics;
* :mod:`~repro.analysis.interpreter` — abstract interpretation over the
  collapsed controller state, *deciding* termination and computing the
  exact cycle count without running the simulator;
* :mod:`~repro.analysis.progfsm_cfg` — the same two layers for the
  programmable FSM's circular upper buffer (loop rows, buffer wrap);
* :mod:`~repro.analysis.rules` / :mod:`~repro.analysis.march_rules` /
  :mod:`~repro.analysis.progfsm_rules` — the rule catalogue (``MC…``
  program rules, ``MA…`` algorithm rules, ``PF…`` upper-buffer rules;
  see ``docs/ANALYSIS.md``);
* :mod:`~repro.analysis.coverage` — the static fault-coverage prover
  (per-fault certificates with failing-read witnesses) and
  :mod:`~repro.analysis.coverage_rules`, the ``CV…`` coverage lint
  family it powers;
* :mod:`~repro.analysis.fixes` — mechanical autofixes behind
  ``repro lint --fix``;
* :mod:`~repro.analysis.fuzz` — the verifier-vs-simulator fuzz harness
  behind ``repro fuzz``;
* :mod:`~repro.analysis.verifier` — orchestration plus
  :class:`~repro.analysis.verifier.VerificationError`, raised by the
  assemblers, the controllers' program loads and ``repro lint`` on
  error-severity findings.
"""

from repro.analysis.cfg import EXIT, ControlFlowGraph, Edge, EdgeKind, build_cfg
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Location,
    Severity,
)
from repro.analysis.coverage import (
    CoverageCertificate,
    FaultVerdict,
    certify,
    support_of,
)
from repro.analysis.coverage_rules import (
    CoverageAnalysis,
    LINT_GEOMETRY,
    run_coverage_rules,
)
from repro.analysis.fixes import FixResult, apply_fixes
from repro.analysis.fuzz import (
    FuzzReport,
    SampleResult,
    check_sample,
    random_geometry,
    random_march,
    run_fuzz,
)
from repro.analysis.interpreter import (
    Interpretation,
    Verdict,
    cycle_bound,
    interpret,
)
from repro.analysis.march_rules import run_march_rules
from repro.analysis.progfsm_cfg import (
    FsmControlFlowGraph,
    FsmEdge,
    FsmEdgeKind,
    build_fsm_cfg,
    fsm_cycle_bound,
    interpret_fsm,
)
from repro.analysis.progfsm_rules import FsmProgramAnalysis, run_fsm_rules
from repro.analysis.rules import (
    ProgramAnalysis,
    RuleSpec,
    rule_catalogue,
    run_program_rules,
)
from repro.analysis.verifier import (
    VerificationError,
    assert_verified,
    verify_coverage,
    verify_fsm_program,
    verify_march,
    verify_program,
)

__all__ = [
    "ControlFlowGraph",
    "CoverageAnalysis",
    "CoverageCertificate",
    "Diagnostic",
    "DiagnosticReport",
    "Edge",
    "EdgeKind",
    "EXIT",
    "FixResult",
    "FsmControlFlowGraph",
    "FsmEdge",
    "FsmEdgeKind",
    "FaultVerdict",
    "FsmProgramAnalysis",
    "FuzzReport",
    "Interpretation",
    "LINT_GEOMETRY",
    "Location",
    "ProgramAnalysis",
    "RuleSpec",
    "SampleResult",
    "Severity",
    "Verdict",
    "VerificationError",
    "apply_fixes",
    "assert_verified",
    "build_cfg",
    "build_fsm_cfg",
    "certify",
    "check_sample",
    "cycle_bound",
    "fsm_cycle_bound",
    "interpret",
    "interpret_fsm",
    "random_geometry",
    "random_march",
    "rule_catalogue",
    "run_coverage_rules",
    "run_fsm_rules",
    "run_fuzz",
    "run_march_rules",
    "run_program_rules",
    "support_of",
    "verify_coverage",
    "verify_fsm_program",
    "verify_march",
    "verify_program",
]
