"""Diagnostic records produced by the static verifier and lint engine.

A :class:`Diagnostic` is one finding — a rule identifier, a severity, a
source location (microcode instruction index and/or march item/operation
index) and an optional fix hint.  A :class:`DiagnosticReport` collects
the findings for one program and renders them as text or JSON; callers
that must not run a bad program (the assembler, the controllers, the
``repro lint`` CLI) gate on :attr:`DiagnosticReport.has_errors`.

Severity policy, matched to the execution model:

* ``ERROR`` — the program hangs the controller, overflows its storage,
  or needs loop hardware the target capabilities lack; running it is
  unsafe or meaningless.
* ``WARNING`` — the program runs but is suspicious (dead rows, reads
  that fail on a fault-free memory, no explicit terminator).
* ``INFO`` — advisory (missed REPEAT compression, portability notes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


class Severity(enum.Enum):
    """Lint finding severity, ordered ERROR > WARNING > INFO."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]


@dataclass(frozen=True)
class Location:
    """Where a finding points.

    Attributes:
        instruction: microcode row index (None for march-level findings).
        item: index into ``MarchTest.items``.
        op: operation index within a march element.
    """

    instruction: Optional[int] = None
    item: Optional[int] = None
    op: Optional[int] = None

    def __str__(self) -> str:
        parts: List[str] = []
        if self.instruction is not None:
            parts.append(f"instr {self.instruction}")
        if self.item is not None:
            parts.append(f"item {self.item}")
        if self.op is not None:
            parts.append(f"op {self.op}")
        return ", ".join(parts) or "program"

    def to_dict(self) -> Dict[str, Optional[int]]:
        return {"instruction": self.instruction, "item": self.item,
                "op": self.op}


#: Location shorthand used by rules that flag the whole program.
PROGRAM = Location()


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    Attributes:
        rule: rule identifier, e.g. ``"MC003"`` (see the catalogue in
            ``docs/ANALYSIS.md``).
        severity: finding severity.
        message: human-readable statement of the problem.
        location: where the finding points.
        hint: optional suggested fix.
    """

    rule: str
    severity: Severity
    message: str
    location: Location = PROGRAM
    hint: Optional[str] = None

    def __str__(self) -> str:
        text = f"{self.severity.value}[{self.rule}] {self.location}: {self.message}"
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location.to_dict(),
            "hint": self.hint,
        }


@dataclass
class DiagnosticReport:
    """All findings for one program, ordered most severe first.

    Attributes:
        name: program / algorithm name the findings refer to.
        diagnostics: the findings.
    """

    name: str
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics) -> None:
        self.diagnostics.extend(diagnostics)

    def sorted(self) -> List[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (-d.severity.rank, d.location.instruction or 0,
                           d.location.item or 0, d.rule),
        )

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity is Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def by_rule(self, rule: str) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.rule == rule)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.sorted())

    def __len__(self) -> int:
        return len(self.diagnostics)

    def summary(self) -> str:
        counts = {Severity.ERROR: 0, Severity.WARNING: 0, Severity.INFO: 0}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity] += 1
        return (f"{counts[Severity.ERROR]} error(s), "
                f"{counts[Severity.WARNING]} warning(s), "
                f"{counts[Severity.INFO]} info")

    def format(self) -> str:
        """Multi-line text rendering (the ``repro lint`` output)."""
        lines = [f"{self.name}: {self.summary()}"]
        lines.extend(f"  {diagnostic}" for diagnostic in self.sorted())
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }

    def raise_on_errors(self) -> None:
        """Raise :class:`~repro.analysis.verifier.VerificationError` if
        any error-severity finding is present."""
        if self.has_errors:
            from repro.analysis.verifier import VerificationError

            raise VerificationError(self)
