"""Rule-based lint engine: registry plus the microcode-level rules.

Every rule has a stable identifier (``MC…`` for microcode-program rules,
``MA…`` for march-algorithm rules — those live in
:mod:`repro.analysis.march_rules` — ``PF…`` for the programmable
FSM architecture's upper-buffer programs, in
:mod:`repro.analysis.progfsm_rules`, and ``CV…`` for statically-proved
fault-coverage gaps, in
:mod:`repro.analysis.coverage_rules`), a default severity and a one-line
title; ``docs/ANALYSIS.md`` documents the catalogue and the test suite
seeds one defect per rule to prove each fires with the right id and
location.

A rule is a generator over findings.  It may yield

* a ``(location, message)`` or ``(location, message, hint)`` tuple — the
  engine fills in the rule id and default severity; or
* a complete :class:`~repro.analysis.diagnostics.Diagnostic` — for rules
  whose severity depends on context (e.g. the SM-mappability rule is
  advisory for the microcode target but fatal for the progfsm compiler).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.cfg import ControlFlowGraph, loop_target
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Location,
    Severity,
)
from repro.analysis.interpreter import Interpretation, Verdict
from repro.core.controller import ControllerCapabilities
from repro.core.microcode.assembler import MicrocodeProgram
from repro.core.microcode.isa import ConditionOp, PAUSE_TIMER_BITS
from repro.core.microcode.storage import DEFAULT_ROWS


@dataclass
class ProgramAnalysis:
    """Everything a microcode-level rule may inspect."""

    program: MicrocodeProgram
    cfg: ControlFlowGraph
    interpretation: Optional[Interpretation]
    capabilities: Optional[ControllerCapabilities] = None
    storage_rows: Optional[int] = None


@dataclass(frozen=True)
class RuleSpec:
    """Registry entry for one lint rule."""

    rule_id: str
    severity: Severity
    title: str
    scope: str                # "program", "march", "fsm" or "coverage"
    check: Callable[..., Iterable]

    def build(self, finding) -> Diagnostic:
        if isinstance(finding, Diagnostic):
            return finding
        location, message, *rest = finding
        return Diagnostic(
            rule=self.rule_id,
            severity=self.severity,
            message=message,
            location=location,
            hint=rest[0] if rest else None,
        )


#: All registered rules, by id (march rules register here too on import).
REGISTRY: Dict[str, RuleSpec] = {}


def rule(rule_id: str, severity: Severity, title: str, scope: str = "program"):
    """Register a lint rule."""

    def decorate(fn):
        if rule_id in REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id}")
        REGISTRY[rule_id] = RuleSpec(rule_id, severity, title, scope, fn)
        return fn

    return decorate


def rule_catalogue() -> List[RuleSpec]:
    """All rules, ordered by id (for docs and the test suite)."""
    import repro.analysis.coverage_rules  # noqa: F401 — CV family registration
    import repro.analysis.march_rules  # noqa: F401 — ensure registration
    import repro.analysis.progfsm_rules  # noqa: F401 — ensure registration
    import repro.rtl.readback  # noqa: F401 — RT family registration

    return [REGISTRY[rule_id] for rule_id in sorted(REGISTRY)]


def run_program_rules(analysis: ProgramAnalysis) -> List[Diagnostic]:
    """Run every microcode-level rule over one analysed program."""
    diagnostics: List[Diagnostic] = []
    for spec in sorted(REGISTRY.values(), key=lambda s: s.rule_id):
        if spec.scope != "program":
            continue
        diagnostics.extend(spec.build(f) for f in spec.check(analysis))
    return diagnostics


# ---------------------------------------------------------------------------
# Microcode-level rules.
# ---------------------------------------------------------------------------


@rule("MC001", Severity.WARNING, "no explicit terminator")
def _missing_terminator(analysis: ProgramAnalysis) -> Iterator[Tuple]:
    """The test only ends by exhausting instruction addresses.

    That is legal (the paper's fall-off termination) but fragile: the
    intent is invisible, and appending rows silently extends the test.
    """
    if analysis.program.instructions and not analysis.cfg.exits_explicitly():
        yield (
            Location(instruction=len(analysis.program.instructions) - 1),
            "no reachable TERMINATE or INC_PORT: the test only ends by "
            "running off the end of the program",
            "append a TERMINATE instruction",
        )


@rule("MC002", Severity.WARNING, "unreachable instruction")
def _unreachable(analysis: ProgramAnalysis) -> Iterator[Tuple]:
    for index in analysis.cfg.unreachable():
        yield (
            Location(instruction=index),
            f"instruction {index} "
            f"({analysis.program.instructions[index].cond.name}) can never "
            "execute",
            "remove the dead row or fix the control flow before it",
        )


@rule("MC003", Severity.ERROR, "element sweep never advances the address")
def _loop_never_advances(analysis: ProgramAnalysis) -> Iterator[Tuple]:
    """A LOOP whose sweep has no ADDR_INC row re-executes the same
    address forever: Last Address never asserts (for memories larger
    than one word), so the element loop never exits."""
    if analysis.capabilities is not None and analysis.capabilities.n_words <= 1:
        return
    instructions = analysis.program.instructions
    for index, instr in enumerate(instructions):
        if instr.cond is not ConditionOp.LOOP:
            continue
        start = loop_target(instructions, index)
        sweep = instructions[start : index + 1]
        if not any(row.is_memory_op and row.addr_inc for row in sweep):
            yield (
                Location(instruction=index),
                f"LOOP at {index} sweeps rows {start}..{index} but no row "
                "increments the address generator — the element loop can "
                "never reach Last Address",
                "set ADDR_INC on the element's final (LOOP) row",
            )


@rule("MC004", Severity.ERROR, "multiple REPEAT instructions")
def _multiple_repeat(analysis: ProgramAnalysis) -> Iterator[Tuple]:
    """One reference register supports exactly one REPEAT.  A second
    REPEAT finds the repeat bit already cleared by the first and
    re-arms it, producing an unbounded Reset-to-1 loop (a symmetric
    program must not be compressed twice)."""
    repeats = [
        index
        for index, instr in enumerate(analysis.program.instructions)
        if instr.cond is ConditionOp.REPEAT
    ]
    for index in repeats[1:]:
        yield (
            Location(instruction=index),
            f"second REPEAT at {index} (first at {repeats[0]}): the single "
            "repeat bit cannot nest, the program re-arms forever",
            "compress at most one symmetric half per program",
        )


@rule("MC005", Severity.ERROR, "REPEAT without a one-row initialisation prefix")
def _repeat_misplaced(analysis: ProgramAnalysis) -> Iterator[Tuple]:
    """REPEAT branches through the decoder's fixed Reset-to-1 path, so
    the repeated body must start at instruction 1 — which requires the
    program to open with a single-row element (its LOOP at row 0)."""
    instructions = analysis.program.instructions
    for index, instr in enumerate(instructions):
        if instr.cond is not ConditionOp.REPEAT:
            continue
        if index < 2:
            yield (
                Location(instruction=index),
                f"REPEAT at {index} has no body: Reset-to-1 needs at least "
                "one instruction between row 1 and the REPEAT",
                "place REPEAT after the element body it should re-execute",
            )
        elif instructions[0].cond is not ConditionOp.LOOP:
            yield (
                Location(instruction=index),
                f"REPEAT at {index} but instruction 0 "
                f"({instructions[0].cond.name}) is not a one-row element: "
                "Reset-to-1 would re-enter mid-element",
                "open the program with a single-operation element "
                "(one LOOP row) before using REPEAT",
            )


@rule("MC006", Severity.ERROR, "HOLD exponent exceeds the pause timer")
def _hold_exponent(analysis: ProgramAnalysis) -> Iterator[Tuple]:
    for index, instr in enumerate(analysis.program.instructions):
        if instr.cond is ConditionOp.HOLD and instr.hold_exponent > PAUSE_TIMER_BITS:
            yield (
                Location(instruction=index),
                f"HOLD exponent {instr.hold_exponent} exceeds the "
                f"{PAUSE_TIMER_BITS}-bit pause timer (max pause "
                f"2^{PAUSE_TIMER_BITS})",
                f"use a pause of at most 2^{PAUSE_TIMER_BITS} time units",
            )


@rule("MC007", Severity.ERROR, "program exceeds the storage unit")
def _storage_overflow(analysis: ProgramAnalysis) -> Iterator:
    rows = len(analysis.program.instructions)
    if analysis.storage_rows is not None:
        if rows > analysis.storage_rows:
            yield (
                Location(instruction=analysis.storage_rows),
                f"program needs {rows} rows but the storage unit holds "
                f"Z={analysis.storage_rows}",
                "enlarge the storage or compress the program",
            )
    elif rows > DEFAULT_ROWS:
        yield Diagnostic(
            rule="MC007",
            severity=Severity.INFO,
            message=(f"program needs {rows} rows, beyond the default "
                     f"Z={DEFAULT_ROWS} storage — the controller will "
                     "auto-grow its storage unit"),
            location=Location(instruction=DEFAULT_ROWS),
        )


@rule("MC008", Severity.ERROR, "loop instruction without matching hardware")
def _capability_mismatch(analysis: ProgramAnalysis) -> Iterator[Tuple]:
    """NEXT_BG needs the data-background loop datapath (word-oriented
    capability), INC_PORT the port sequencer (multiport capability)."""
    caps = analysis.capabilities
    if caps is None:
        return
    for index, instr in enumerate(analysis.program.instructions):
        if instr.cond is ConditionOp.NEXT_BG and not caps.word_oriented:
            yield (
                Location(instruction=index),
                "NEXT_BG requires the word-oriented data-background loop "
                f"hardware, but the controller targets width={caps.width}",
                "drop the NEXT_BG row or build a word-oriented controller",
            )
        if instr.cond is ConditionOp.INC_PORT and not caps.multiport:
            yield (
                Location(instruction=index),
                "INC_PORT requires the multiport sequencer, but the "
                f"controller targets ports={caps.ports}",
                "drop the INC_PORT row or build a multiport controller",
            )


@rule("MC009", Severity.WARNING, "capability loop missing from the tail")
def _missing_capability_loop(analysis: ProgramAnalysis) -> Iterator[Tuple]:
    caps = analysis.capabilities
    if caps is None:
        return
    conds = {instr.cond for instr in analysis.program.instructions}
    tail = Location(instruction=max(0, len(analysis.program.instructions) - 1))
    if caps.word_oriented and ConditionOp.NEXT_BG not in conds:
        yield (
            tail,
            f"width={caps.width} memory but no NEXT_BG row: only the first "
            "data background is ever tested",
            "append a NEXT_BG row before the terminator",
        )
    if caps.multiport and ConditionOp.INC_PORT not in conds:
        yield (
            tail,
            f"ports={caps.ports} memory but no INC_PORT row: only port 0 "
            "is ever tested",
            "terminate the program with INC_PORT instead of TERMINATE",
        )


@rule("MC010", Severity.ERROR, "program provably never terminates")
def _nonterminating(analysis: ProgramAnalysis) -> Iterator[Tuple]:
    interp = analysis.interpretation
    if interp is not None and interp.verdict is Verdict.DIVERGES:
        yield (
            Location(instruction=interp.location),
            f"abstract interpretation proves divergence: {interp.reason}",
            "fix the control flow so every loop has an exit condition",
        )


@rule("MC012", Severity.INFO, "symmetric program stored uncompressed")
def _missed_compression(analysis: ProgramAnalysis) -> Iterator[Tuple]:
    """The source algorithm has a REPEAT-compressible symmetric half but
    the program stores both halves verbatim."""
    program = analysis.program
    # Judge by the rows, not the provenance flag: a program reloaded from
    # the interchange format loses the flag but keeps its REPEAT row.
    if program.source is None or any(
        row.cond is ConditionOp.REPEAT for row in program.instructions
    ):
        return
    from repro.march.properties import symmetric_split

    split = symmetric_split(program.source, require_single_op_prefix=True)
    if split is not None:
        saved = sum(element.op_count for element in split.body) - 1
        yield (
            Location(),
            f"'{program.source.name}' is symmetric ({split.aux} complement): "
            f"REPEAT compression would save {saved} storage rows",
            "assemble with compress=True",
        )


@rule("MC011", Severity.WARNING, "control flow defeats static analysis")
def _unanalyzable(analysis: ProgramAnalysis) -> Iterator[Tuple]:
    interp = analysis.interpretation
    if interp is not None and interp.verdict is Verdict.UNKNOWN:
        yield (
            Location(instruction=interp.location),
            f"cannot bound the cycle count: {interp.reason}",
            "restructure element bodies as straight NOP runs ending in "
            "one LOOP row",
        )
