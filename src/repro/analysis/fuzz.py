"""Verifier-vs-simulator fuzzing: the analyses proved at corpus scale.

The static verifier is only worth trusting if it agrees with the
executable semantics on more than the ~10 library algorithms.  This
module generates random **well-formed** march algorithms (element
count, operations, address orders, retention pauses) over random small
geometries and, for every sample, checks these identities:

(a) the microcode abstract interpreter proves termination and its cycle
    count equals the microcode controller's trace length, exactly;
(b) samples the SM0–SM7 compiler accepts get the *same verdict* from
    both architectures' analyses, and the progfsm interpreter's cycle
    count equals the FSM controller's trace length, exactly;
(c) any program the verifier passes runs to termination in the
    controller (the controller's runtime cycle bound is never hit);
(d) behavioural equivalence: every architecture that can realise the
    sample (microcode with and without REPEAT compression, progfsm
    inside the SM0–SM7 boundary, hardwired) emits the golden operation
    stream op-for-op (:func:`repro.conformance.check_conformance`).
    Failing samples are delta-debugged to a minimal reproducer
    (:func:`repro.conformance.shrink_sample`) that is embedded in the
    report, so a nightly failure is reproducible — and promotable into
    ``tests/corpus/regressions/`` — from the JSON artifact alone.
(e) fault-response equivalence: the same sample is additionally run
    against a *faulty* memory — one spec-expressible fault drawn from
    the sample's own RNG (:func:`repro.conformance.faulty.sampling.
    random_fault`) — and every realising architecture must produce the
    golden fail events, fail-log aggregations and diagnosis
    (:func:`repro.conformance.check_fault_conformance`).  Failures are
    delta-debugged over all three axes
    (:func:`repro.conformance.shrink_faulty_sample`) to a minimal
    (march, geometry, fault) triple embedded in the report.
(f) coverage-certificate equivalence: the static coverage prover
    (:func:`repro.analysis.coverage.certify`) and the simulated sweep
    must agree fault-for-fault on a stratified fault sample of the
    sample's geometry, witnesses replaying as failing reads
    (:func:`repro.conformance.faulty.coverage.
    check_coverage_conformance`).  Disagreements are delta-debugged
    with the same three-axis shrinker, via
    :func:`repro.conformance.faulty.coverage.
    coverage_disagreement_predicate`.
(g) sweep-engine equivalence: the identity-(e) sample is re-swept by
    the numpy batch kernel (:func:`repro.conformance.faulty.
    run_fault_sweep` with ``engine="vector"``) and the resulting
    one-run report must agree payload-for-payload — timing aside —
    with a scalar report built from the identity-(e) response, the
    cross-engine contract of :class:`repro.conformance.faulty.
    CrossEngineResult`.  Skipped silently when numpy is unavailable.
(h) in-field session identity: a deterministic in-field conformance
    session (:func:`repro.conformance.build_infield_plan` on the
    sample's geometry, seeded from the sample) run on a fault-free
    memory must preserve every word of seeded user data and raise zero
    fail events; the same session with a stuck-at fault injected
    mid-stream at a transparent-slot boundary must detect it, with the
    first fail event attributed to that slot's owner.  This identity is
    independent of the sampled march — it pins the transparent
    scheduler itself.
(i) interrupted-then-resumed sweep identity: the sample's algorithm is
    swept against a few random faults serially, then re-swept through a
    checkpoint store with an injected interrupt and resumed — the
    resumed report must equal the serial baseline payload-for-payload,
    with the completed shards served as cache hits.
(j) pseudo-ring determinism: a PRT configuration drawn from a derived
    RNG (:mod:`repro.prt`) must expand to the same attributed golden
    stream twice on the sample's geometry, the cycle-stepped
    :class:`~repro.prt.controller.PrtController` must issue the same
    operations op-for-op, and the controller's latched signature must
    equal the session's predicted MISR signature.  Like (h), this is
    march-independent — it pins the non-march stimulus family.

Any violation — including the verifier *rejecting* a well-formed
algorithm, the false-positive direction — is a mismatch.  The
``repro fuzz`` CLI subcommand batch-parallelises the corpus over the
crash-tolerant :class:`~repro.service.engine.JobEngine`; per-sample
seeds are derived from ``(seed, index)`` so reports are deterministic
and independent of ``--jobs``, and a crashed or interrupted worker
costs its batch a retry, not the corpus.

The same generator is exposed as a :mod:`hypothesis` strategy
(:func:`march_test_strategy`) so the property-based test suite shrinks
any counterexample the corpus run surfaces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.controller import ControllerCapabilities
from repro.core.microcode.assembler import assemble
from repro.core.microcode.controller import MicrocodeBistController
from repro.core.progfsm.compiler import CompileError, compile_to_sm
from repro.core.progfsm.controller import ProgrammableFsmBistController
from repro.core.progfsm.march_elements import SM_PATTERNS, sm_element
from repro.core.progfsm.upper_buffer import DEFAULT_ROWS as FSM_BUFFER_ROWS
from repro.march.element import (
    AddressOrder,
    MarchElement,
    OpKind,
    Operation,
    Pause,
)
from repro.march.notation import format_test
from repro.march.test import MarchItem, MarchTest

#: Pause durations the generator draws from: powers of two (microcode
#: HOLD timer constraint), one shared duration per algorithm (progfsm
#: hold-register constraint).
PAUSE_DURATIONS = (128, 256, 512, 1024)

#: Geometry bounds: small memories keep the O(N) simulation cheap while
#: still exercising every loop level (addresses, backgrounds, ports).
MAX_WORDS = 9
WIDTHS = (1, 2, 4)
MAX_PORTS = 3

_ORDERS = (AddressOrder.UP, AddressOrder.DOWN, AddressOrder.ANY)


def random_march(rng: random.Random) -> MarchTest:
    """One random well-formed march algorithm.

    Half the elements are drawn straight from the SM0–SM7 library (so
    the progfsm branch of the harness sees real traffic), half are
    arbitrary 1–4-operation sequences that usually fall outside it.
    Pauses are non-consecutive and share one power-of-two duration.
    """
    items: List[MarchItem] = []
    duration = rng.choice(PAUSE_DURATIONS)
    n_elements = rng.randint(1, 6)
    for position in range(n_elements):
        if position > 0 and rng.random() < 0.25:
            items.append(Pause(duration))
        items.append(_random_element(rng))
    if rng.random() < 0.15:
        items.append(Pause(duration))  # trailing pause: microcode-only
    return MarchTest("fuzz", items)


def _random_element(rng: random.Random) -> MarchElement:
    order = rng.choice(_ORDERS)
    if rng.random() < 0.5:
        sm = rng.randrange(len(SM_PATTERNS))
        return sm_element(sm, order, rng.randint(0, 1), rng.randint(0, 1))
    ops = [
        Operation(
            rng.choice((OpKind.READ, OpKind.WRITE)), rng.randint(0, 1)
        )
        for _ in range(rng.randint(1, 4))
    ]
    return MarchElement(order, ops)


def random_geometry(rng: random.Random) -> ControllerCapabilities:
    """One random small memory geometry."""
    return ControllerCapabilities(
        n_words=rng.randint(1, MAX_WORDS),
        width=rng.choice(WIDTHS),
        ports=rng.randint(1, MAX_PORTS),
    )


def march_test_strategy():
    """The generator as a :mod:`hypothesis` strategy (for the property
    tests, which shrink counterexamples the corpus run cannot)."""
    import hypothesis.strategies as st

    return st.builds(
        lambda seed: random_march(random.Random(seed)),
        st.integers(min_value=0, max_value=2**48),
    )


@dataclass
class SampleResult:
    """Verdict for one fuzzed sample.

    Attributes:
        index: sample index within the corpus.
        sample_seed: the derived per-sample RNG seed string
            (``"{seed}:{index}"``) — regenerates this exact sample.
        notation: the generated algorithm in march notation.
        geometry: ``(n_words, width, ports)``.
        compress: whether REPEAT compression was enabled.
        microcode_cycles: proved microcode cycle count.
        fsm_compiled: whether the SM0–SM7 compiler accepted the sample.
        fsm_cycles: proved progfsm trace-cycle count (compiled samples).
        mismatches: human-readable description of every violated
            identity — empty means the sample agrees everywhere.
        shrunk: minimal reproducer of a behavioural divergence
            (notation/geometry/checks), or None when identity (d) held.
        fault_spec: the fault injected for identity (e), as a
            :mod:`repro.faults.spec` string (None when (e) was off).
        fault_detected: whether the golden response saw the fault.
        shrunk_faulty: minimal (march, geometry, fault) reproducer of a
            response divergence, or None when identity (e) held.
        vector_checked: whether identity (g) ran (requires numpy and
            ``vector_conformance=True``).
        coverage_pairs: certificate-vs-sweep fault pairs cross-checked
            for identity (f) (0 when (f) was off).
        shrunk_coverage: minimal (march, geometry, fault) reproducer of
            a certificate-vs-sweep disagreement, or None when identity
            (f) held.
        infield_checked: whether identity (h) ran — the fault-free and
            mid-stream-injection in-field session pair.
        service_checked: whether identity (i) ran — the interrupted-
            then-resumed sweep vs the uninterrupted serial sweep.
        prt_checked: whether identity (j) ran — pseudo-ring session
            determinism and controller/session agreement.
    """

    index: int
    notation: str
    geometry: Tuple[int, int, int]
    compress: bool
    sample_seed: str = ""
    microcode_cycles: Optional[int] = None
    fsm_compiled: bool = False
    fsm_cycles: Optional[int] = None
    mismatches: List[str] = field(default_factory=list)
    shrunk: Optional[Dict[str, Any]] = None
    fault_spec: Optional[str] = None
    fault_detected: bool = False
    shrunk_faulty: Optional[Dict[str, Any]] = None
    vector_checked: bool = False
    coverage_pairs: int = 0
    shrunk_coverage: Optional[Dict[str, Any]] = None
    infield_checked: bool = False
    service_checked: bool = False
    prt_checked: bool = False

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "sample_seed": self.sample_seed,
            "notation": self.notation,
            "geometry": list(self.geometry),
            "compress": self.compress,
            "microcode_cycles": self.microcode_cycles,
            "fsm_compiled": self.fsm_compiled,
            "fsm_cycles": self.fsm_cycles,
            "mismatches": self.mismatches,
            "shrunk": self.shrunk,
            "fault_spec": self.fault_spec,
            "fault_detected": self.fault_detected,
            "shrunk_faulty": self.shrunk_faulty,
            "vector_checked": self.vector_checked,
            "coverage_pairs": self.coverage_pairs,
            "shrunk_coverage": self.shrunk_coverage,
            "infield_checked": self.infield_checked,
            "service_checked": self.service_checked,
            "prt_checked": self.prt_checked,
        }


def check_sample(
    seed: int,
    index: int,
    conformance: bool = True,
    fault_conformance: bool = True,
    coverage_conformance: bool = True,
    vector_conformance: bool = True,
    infield_conformance: bool = True,
    service_conformance: bool = True,
    prt_conformance: bool = True,
) -> SampleResult:
    """Generate sample ``index`` of corpus ``seed`` and check all ten
    verifier-vs-simulator identities on it (``conformance=False`` skips
    the behavioural-equivalence identity (d); ``fault_conformance=False``
    skips the faulty-memory response identity (e) — and with it the
    sweep-engine identity (g), which reuses (e)'s response;
    ``coverage_conformance=False`` skips the coverage-certificate
    identity (f); ``vector_conformance=False`` skips (g) alone;
    ``infield_conformance=False`` skips the in-field session identity
    (h); ``service_conformance=False`` skips the resumed-sweep identity
    (i); ``prt_conformance=False`` skips the pseudo-ring determinism
    identity (j))."""
    from repro.analysis.interpreter import Verdict, interpret
    from repro.analysis.progfsm_cfg import interpret_fsm
    from repro.analysis.verifier import verify_fsm_program, verify_program

    sample_seed = f"{seed}:{index}"
    rng = random.Random(sample_seed)
    test = random_march(rng)
    caps = random_geometry(rng)
    compress = rng.random() < 0.5
    result = SampleResult(
        index=index,
        sample_seed=sample_seed,
        notation=format_test(test),
        geometry=(caps.n_words, caps.width, caps.ports),
        compress=compress,
    )

    # -- (a)+(c), microcode ------------------------------------------------
    program = assemble(test, caps, compress=compress, verify=False)
    report = verify_program(program, caps)
    interp = interpret(program, caps)
    if report.has_errors:
        # The generator only emits well-formed algorithms, so an error
        # here is a verifier false positive.
        result.mismatches.append(
            "microcode verifier rejected a well-formed algorithm: "
            + "; ".join(str(d) for d in report.errors)
        )
    elif interp.verdict is not Verdict.TERMINATES:
        result.mismatches.append(
            f"microcode interpreter verdict {interp.verdict.value} "
            f"({interp.reason}) on a verifier-passed program"
        )
    else:
        result.microcode_cycles = interp.cycles
        controller = MicrocodeBistController(
            program, caps, verify=False
        )
        try:
            traced = sum(1 for _ in controller.trace())
        except RuntimeError as error:  # runtime cycle bound hit
            result.mismatches.append(
                f"verifier-passed program did not terminate: {error}"
            )
        else:
            if traced != interp.cycles:
                result.mismatches.append(
                    f"microcode cycle mismatch: proved {interp.cycles}, "
                    f"simulated {traced}"
                )

    # -- (b)+(c), progfsm --------------------------------------------------
    try:
        fsm_program = compile_to_sm(test, caps, verify=False)
    except CompileError:
        fsm_program = None  # outside the SM0-SM7 flexibility boundary
    if fsm_program is not None:
        result.fsm_compiled = True
        fsm_report = verify_fsm_program(fsm_program, caps)
        fsm_interp = interpret_fsm(fsm_program, caps)
        if fsm_interp.verdict is not interp.verdict:
            result.mismatches.append(
                f"verdict disagreement: microcode {interp.verdict.value}, "
                f"progfsm {fsm_interp.verdict.value}"
            )
        if fsm_report.has_errors:
            result.mismatches.append(
                "progfsm verifier rejected a compiler-produced program: "
                + "; ".join(str(d) for d in fsm_report.errors)
            )
        elif fsm_interp.verdict is Verdict.TERMINATES:
            result.fsm_cycles = fsm_interp.cycles
            controller = ProgrammableFsmBistController(
                fsm_program,
                caps,
                buffer_rows=max(FSM_BUFFER_ROWS, len(fsm_program)),
                verify=False,
            )
            try:
                traced = sum(1 for _ in controller.trace())
            except RuntimeError as error:
                result.mismatches.append(
                    f"verifier-passed FSM program did not terminate: {error}"
                )
            else:
                if traced != fsm_interp.cycles:
                    result.mismatches.append(
                        f"progfsm cycle mismatch: proved "
                        f"{fsm_interp.cycles}, simulated {traced}"
                    )

    # -- (d), op-for-op behavioural equivalence ----------------------------
    if conformance:
        _check_conformance_identity(result, test, caps, compress)

    # -- (e)+(g), fault-response and sweep-engine equivalence --------------
    # The fault is drawn from the sample's own RNG *after* the structural
    # draws above, so "{seed}:{index}" alone regenerates the whole triple.
    if fault_conformance:
        _check_fault_identity(
            result, test, caps, compress, rng, vector=vector_conformance
        )

    # -- (f), coverage-certificate equivalence -----------------------------
    if coverage_conformance:
        _check_coverage_identity(result, test, caps, index)

    # -- (h), in-field session identity ------------------------------------
    # Drawn from a derived RNG so the session is deterministic in the
    # sample seed regardless of which other identities are enabled.
    if infield_conformance:
        _check_infield_identity(
            result, caps, random.Random(f"{sample_seed}:infield")
        )

    # -- (i), interrupted-then-resumed sweep identity ----------------------
    # Also from a derived RNG, for the same reason.
    if service_conformance:
        _check_service_identity(
            result, test, caps, compress,
            random.Random(f"{sample_seed}:service"),
        )

    # -- (j), pseudo-ring determinism --------------------------------------
    # March-independent like (h); the config comes from a derived RNG.
    if prt_conformance:
        _check_prt_identity(
            result, caps, random.Random(f"{sample_seed}:prt")
        )
    return result


def _check_conformance_identity(
    result: SampleResult,
    test: MarchTest,
    caps: ControllerCapabilities,
    compress: bool,
) -> None:
    """Identity (d): all realising architectures emit the golden stream.

    On divergence the sample is delta-debugged immediately (in the
    worker, where the failing input is already in hand) and the minimal
    reproducer is attached to the result.
    """
    from repro.conformance import (
        check_conformance,
        conformance_predicate,
        shrink_sample,
    )

    conf = check_conformance(test, caps, compress=compress)
    if conf.ok:
        return
    result.mismatches.append(
        "behavioural divergence: " + conf.describe_failures()
    )
    shrunk = shrink_sample(
        test,
        caps,
        conformance_predicate(compress=compress),
        max_checks=500,
    )
    result.shrunk = shrunk.to_dict()


def _check_fault_identity(
    result: SampleResult,
    test: MarchTest,
    caps: ControllerCapabilities,
    compress: bool,
    rng: random.Random,
    vector: bool = True,
) -> None:
    """Identities (e) and (g): one injected fault, every engine agrees.

    Draws a single spec-expressible fault from the sample RNG, runs all
    realising architectures' BIST sessions against it and compares fail
    events, fail logs and diagnosis against the golden response.  A
    divergence (or a wedged/crashed session) is delta-debugged over
    march items, operations, the fault and the geometry; the minimal
    triple rides in the report.

    When numpy is available (and ``vector`` is on), the scalar response
    doubles as the oracle for identity (g): it is wrapped into a
    one-run :class:`~repro.conformance.faulty.FaultSweepReport` and the
    vector engine must reproduce that report payload — timing aside —
    from scratch.  No extra scalar run is spent; the (e) result is
    reused.
    """
    from repro.conformance import (
        check_fault_conformance,
        fault_response_predicate,
        random_fault,
        shrink_faulty_sample,
    )
    from repro.faults.spec import format_fault

    fault = random_fault(rng, caps)
    result.fault_spec = format_fault(fault)
    response = check_fault_conformance(test, caps, fault, compress=compress)
    result.fault_detected = response.detected
    if not response.ok:
        result.mismatches.append(
            "fault-response divergence under "
            f"{result.fault_spec}: {response.describe_failures()}"
        )
        shrunk = shrink_faulty_sample(
            test,
            caps,
            result.fault_spec,
            fault_response_predicate(compress=compress),
            max_checks=500,
        )
        result.shrunk_faulty = shrunk.to_dict()
    if vector:
        _check_vector_identity(result, test, caps, fault, compress, response)


def _check_vector_identity(
    result: SampleResult,
    test: MarchTest,
    caps: ControllerCapabilities,
    fault,
    compress: bool,
    response,
) -> None:
    """Identity (g): the batch kernel reproduces the scalar sweep report.

    The scalar side costs nothing — identity (e)'s response is folded
    into a one-run sweep report — so each fuzz sample buys a free
    cross-engine conformance case on a *random* (march, geometry,
    fault) triple, far off the curated library the dedicated
    ``--cross-engine`` sweeps exercise.  Divergences are reported with
    the first differing payload field; the "{seed}:{index}" sample seed
    is already a minimal-enough reproducer (one algorithm, one fault),
    so no shrink pass is run.
    """
    from repro.vector import HAVE_NUMPY

    if not HAVE_NUMPY:
        return
    from repro.conformance.faulty import (
        CrossEngineResult,
        FaultSweepReport,
        run_fault_sweep,
    )

    scalar = FaultSweepReport(
        geometry=(caps.n_words, caps.width, caps.ports)
    )
    scalar.add(response)
    vector = run_fault_sweep(
        [test], caps, [fault], compress=compress, engine="vector"
    )
    result.vector_checked = True
    cross = CrossEngineResult(scalar=scalar, vector=vector)
    if not cross.ok:
        result.mismatches.append(
            "sweep-engine divergence under "
            f"{result.fault_spec}: {cross.divergence()}"
        )


def _check_coverage_identity(
    result: SampleResult,
    test: MarchTest,
    caps: ControllerCapabilities,
    index: int,
) -> None:
    """Identity (f): the static coverage prover agrees with simulation.

    Certifies the sample against a stratified spec-expressible fault
    sample of its own geometry (deterministic in the sample index) and
    cross-checks every verdict — and every witness — against the
    simulated golden-expansion sweep.  A disagreement is delta-debugged
    over march items, operations, the fault and the geometry; the
    minimal triple rides in the report.
    """
    from repro.conformance import shrink_faulty_sample
    from repro.conformance.faulty import sweep_faults
    from repro.conformance.faulty.coverage import (
        check_coverage_conformance,
        coverage_disagreement_predicate,
    )

    faults = sweep_faults(caps, per_kind=2, seed=index)
    check = check_coverage_conformance(
        tests=[test], geometry=caps, faults=faults, universe_name="sample"
    )
    result.coverage_pairs = check.checked
    if check.ok:
        return
    first = check.disagreements[0]
    result.mismatches.append("coverage divergence: " + first.describe())
    if first.spec is not None:
        shrunk = shrink_faulty_sample(
            test,
            caps,
            first.spec,
            coverage_disagreement_predicate(),
            max_checks=500,
        )
        result.shrunk_coverage = shrunk.to_dict()


def _check_infield_identity(
    result: SampleResult,
    caps: ControllerCapabilities,
    rng: random.Random,
) -> None:
    """Identity (h): the in-field scheduler preserves data and detects.

    Builds the deterministic in-field plan for the sample's geometry
    (default transparent trio, a per-sample scheduler seed) and runs it
    twice: on a fault-free memory, where every checkpoint must verify
    bit-identically and the event log must stay empty, and with a
    stuck-at fault injected at a randomly chosen transparent-slot
    boundary, where the session must detect the defect and attribute
    the first fail event to that slot.
    """
    from repro.conformance.infield import (
        build_infield_plan,
        run_infield_session,
    )
    from repro.faults.spec import parse_fault
    from repro.memory.sram import Sram

    plan = build_infield_plan(caps, seed=rng.randrange(2**16))

    clean = run_infield_session(
        plan, Sram(caps.n_words, width=caps.width, ports=caps.ports)
    )
    if clean.events:
        result.mismatches.append(
            "in-field session raised fail events on a fault-free "
            f"memory: first {clean.events[0]}"
        )
    if not clean.user_data_preserved:
        bad = [c.checkpoint.slot for c in clean.checkpoints if not c.ok]
        result.mismatches.append(
            "in-field session corrupted seeded user data "
            f"(failing checkpoint slot(s): {bad})"
        )

    checkpoint = rng.choice(plan.checkpoints)
    word = rng.randrange(caps.n_words)
    bit = rng.randrange(caps.width)
    spec = f"saf:{word}:{bit}:{rng.randint(0, 1)}"
    faulty = run_infield_session(
        plan,
        Sram(caps.n_words, width=caps.width, ports=caps.ports),
        inject=(parse_fault(spec), checkpoint.start_index),
    )
    if not faulty.detected:
        result.mismatches.append(
            f"in-field session missed {spec} injected at slot "
            f"{checkpoint.slot} boundary (op {checkpoint.start_index})"
        )
    elif not faulty.events[0].owner.startswith(f"slot {checkpoint.slot} "):
        result.mismatches.append(
            f"in-field detection of {spec} misattributed: expected "
            f"slot {checkpoint.slot}, first event owned by "
            f"{faulty.events[0].owner!r}"
        )
    result.infield_checked = True


def _check_service_identity(
    result: SampleResult,
    test: MarchTest,
    caps: ControllerCapabilities,
    compress: bool,
    rng: random.Random,
) -> None:
    """Identity (i): a resumed sweep equals the uninterrupted sweep.

    Runs the sample's algorithm against a few random faults three ways:
    serial (the baseline), checkpointed into a throwaway store with an
    injected interrupt partway through (asserting the partial report is
    marked ``interrupted`` and is a prefix of the baseline), and then
    resumed from the same store.  The resumed report's payload — timing
    aside — must be byte-identical to the baseline's, with the
    already-completed shards served as cache hits.
    """
    import tempfile

    from repro.conformance.faulty.check import (
        SweepInterrupted,
        run_fault_sweep,
    )
    from repro.conformance.faulty.sampling import random_fault
    from repro.service import ChaosPlan, ResultStore

    faults = [random_fault(rng, caps) for _ in range(3)]
    baseline = run_fault_sweep(
        [test], caps, faults, compress=compress
    ).to_json(include_timing=False)

    with tempfile.TemporaryDirectory(prefix="repro-service-") as root:
        store = ResultStore(root)
        plan = ChaosPlan(interrupt_after=1)
        try:
            run_fault_sweep(
                [test], caps, faults, compress=compress,
                store=store, resume=True, chaos=plan,
            )
        except SweepInterrupted as interrupt:
            partial = interrupt.report.to_json()
            if not partial.get("interrupted"):
                result.mismatches.append(
                    "service identity: partial report not marked "
                    "interrupted"
                )
            if partial["checked"] >= baseline["checked"]:
                result.mismatches.append(
                    "service identity: interrupt left nothing to resume "
                    f"({partial['checked']}/{baseline['checked']} runs)"
                )
        else:
            result.mismatches.append(
                "service identity: injected interrupt did not fire"
            )
            return
        resumed = run_fault_sweep(
            [test], caps, faults, compress=compress,
            store=store, resume=True,
        )
        stats = (resumed.service_stats or {}).get("store", {})
        if resumed.to_json(include_timing=False) != baseline:
            result.mismatches.append(
                "service identity: resumed sweep diverged from the "
                "uninterrupted serial sweep"
            )
        elif not stats.get("hits"):
            result.mismatches.append(
                "service identity: resume recomputed every shard "
                f"(store stats {stats})"
            )
    result.service_checked = True


def _check_prt_identity(
    result: SampleResult,
    caps: ControllerCapabilities,
    rng: random.Random,
) -> None:
    """Identity (j): PRT sessions are deterministic and the controller
    realises them.

    Draws a random pseudo-ring configuration (passes, seed, ring
    orientation) from the derived RNG and checks, on the sample's
    geometry, that the golden expansion is a pure function of the
    configuration (two expansions agree op-for-op and owner-for-owner),
    that the cycle-stepped FSM controller issues the identical operation
    stream, and that the signature the controller latches equals the
    session's predicted MISR signature.  The "{seed}:{index}" sample
    seed regenerates the configuration, so no shrink pass is needed.
    """
    from repro.prt import PrtConfig, PrtController, PrtSession

    config = PrtConfig(
        passes=rng.randint(1, 5),
        seed=rng.randrange(1, 1 << 16),
        order=rng.choice(("up", "down")),
    )
    session = PrtSession(config)
    first = session.attributed_stream(caps)
    second = session.attributed_stream(caps)
    if [(a.op, a.owner) for a in first] != [(a.op, a.owner) for a in second]:
        result.mismatches.append(
            f"prt determinism: two expansions of {session.notation} "
            f"diverged on the same geometry"
        )
    if len(first) != session.op_count(caps):
        result.mismatches.append(
            f"prt op-count: {session.notation} expanded to {len(first)} "
            f"ops, op_count predicts {session.op_count(caps)}"
        )
    controller = PrtController(config, caps)
    engine_ops = [entry.op for entry in controller.attributed_stream()]
    golden_ops = [attributed.op for attributed in first]
    if engine_ops != golden_ops:
        divergence = next(
            (i for i, (a, b) in enumerate(zip(engine_ops, golden_ops))
             if a != b),
            min(len(engine_ops), len(golden_ops)),
        )
        result.mismatches.append(
            f"prt controller divergence: {session.notation} engine op "
            f"{divergence} ({engine_ops[divergence:divergence + 1]}) != "
            f"golden ({golden_ops[divergence:divergence + 1]})"
        )
    predicted = session.predicted_signature(caps)
    if controller.signature != predicted:
        result.mismatches.append(
            f"prt signature mismatch: controller latched "
            f"{controller.signature}, session predicts {predicted}"
        )
    result.prt_checked = True


@dataclass
class FuzzReport:
    """Aggregated outcome of one corpus run."""

    samples: int
    seed: int
    checked: int = 0
    fsm_compiled: int = 0
    fault_detected: int = 0
    vector_checked: int = 0
    coverage_pairs: int = 0
    infield_checked: int = 0
    service_checked: int = 0
    prt_checked: int = 0
    mismatch_count: int = 0
    mismatches: List[Dict[str, Any]] = field(default_factory=list)
    interrupted: bool = False
    service_stats: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.mismatch_count == 0

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "samples": self.samples,
            "seed": self.seed,
            "checked": self.checked,
            "fsm_compiled": self.fsm_compiled,
            "fsm_compiled_fraction": (
                round(self.fsm_compiled / self.checked, 4)
                if self.checked
                else 0.0
            ),
            "fault_detected": self.fault_detected,
            "vector_checked": self.vector_checked,
            "coverage_pairs": self.coverage_pairs,
            "infield_checked": self.infield_checked,
            "service_checked": self.service_checked,
            "prt_checked": self.prt_checked,
            "mismatch_count": self.mismatch_count,
            "mismatches": self.mismatches,
        }
        if self.interrupted:
            payload["interrupted"] = True
        # service_stats deliberately stays off the payload: to_json()
        # is the jobs-independence contract surface ("the report is
        # identical regardless of --jobs"), and pool telemetry is a
        # function of the execution, not the corpus.
        return payload

    def format(self) -> str:
        lines = [
            f"fuzz: {self.checked}/{self.samples} samples checked "
            f"(seed {self.seed}), {self.fsm_compiled} SM-compilable, "
            f"{self.fault_detected} fault-detecting, "
            f"{self.vector_checked} vector-cross-checked, "
            f"{self.coverage_pairs} coverage pairs certified, "
            f"{self.infield_checked} in-field sessions, "
            f"{self.service_checked} resumed-sweep identities, "
            f"{self.prt_checked} pseudo-ring sessions, "
            f"{self.mismatch_count} mismatch(es)"
            + (" [INTERRUPTED]" if self.interrupted else "")
        ]
        for entry in self.mismatches:
            lines.append(
                f"  sample {entry['index']} "
                f"(seed {entry.get('sample_seed', '?')}) "
                f"{tuple(entry['geometry'])}: {entry['notation']}"
            )
            if entry.get("fault_spec"):
                lines.append(f"    fault: {entry['fault_spec']}")
            for mismatch in entry["mismatches"]:
                lines.append(f"    {mismatch}")
            shrunk = entry.get("shrunk")
            if shrunk:
                lines.append(
                    f"    shrunk reproducer: {shrunk['notation']} on "
                    f"{tuple(shrunk['geometry'])}"
                )
            shrunk_faulty = entry.get("shrunk_faulty")
            if shrunk_faulty:
                lines.append(
                    f"    shrunk faulty reproducer: "
                    f"{shrunk_faulty['notation']} on "
                    f"{tuple(shrunk_faulty['geometry'])} under "
                    f"{shrunk_faulty['fault']}"
                )
            shrunk_coverage = entry.get("shrunk_coverage")
            if shrunk_coverage:
                lines.append(
                    f"    shrunk coverage reproducer: "
                    f"{shrunk_coverage['notation']} on "
                    f"{tuple(shrunk_coverage['geometry'])} under "
                    f"{shrunk_coverage['fault']}"
                )
        return "\n".join(lines)


def _check_batch(
    args: Tuple[int, int, int, bool, bool, bool, bool, bool, bool, bool]
) -> List[Dict[str, Any]]:
    """Worker entry point: check samples ``start..start+count-1``.

    Returns compact per-sample dicts (full detail only for mismatches)
    to keep the inter-process payload small.
    """
    (seed, start, count, conformance, fault_conformance, coverage,
     vector, infield, service, prt) = args
    out: List[Dict[str, Any]] = []
    for index in range(start, start + count):
        result = check_sample(
            seed,
            index,
            conformance=conformance,
            fault_conformance=fault_conformance,
            coverage_conformance=coverage,
            vector_conformance=vector,
            infield_conformance=infield,
            service_conformance=service,
            prt_conformance=prt,
        )
        if result.ok:
            out.append({"index": index, "ok": True,
                        "fsm_compiled": result.fsm_compiled,
                        "fault_detected": result.fault_detected,
                        "vector_checked": result.vector_checked,
                        "coverage_pairs": result.coverage_pairs,
                        "infield_checked": result.infield_checked,
                        "service_checked": result.service_checked,
                        "prt_checked": result.prt_checked})
        else:
            payload = result.to_dict()
            payload["ok"] = False
            out.append(payload)
    return out


def _lost_batch_entry(start: int, count: int, error: str) -> Dict[str, Any]:
    """A synthetic mismatch entry for a batch the service lost."""
    return {
        "index": start,
        "ok": False,
        "sample_seed": f"<batch {start}..{start + count - 1}>",
        "notation": "<service>",
        "geometry": [0, 0, 0],
        "mismatches": [f"service: batch lost: {error}"],
    }


def run_fuzz(
    samples: int,
    seed: int = 0,
    jobs: int = 1,
    conformance: bool = True,
    fault_conformance: bool = True,
    coverage_conformance: bool = True,
    vector_conformance: bool = True,
    infield_conformance: bool = True,
    service_conformance: bool = True,
    prt_conformance: bool = True,
    shard_timeout: Optional[float] = None,
) -> FuzzReport:
    """Run the corpus and aggregate a :class:`FuzzReport`.

    Args:
        samples: corpus size.
        seed: master seed; sample ``i`` derives its RNG from
            ``(seed, i)``, so the report is independent of ``jobs``.
        jobs: worker-process count; 1 runs inline (no pool), more run
            batches on a :class:`~repro.service.engine.JobEngine` — a
            crashed worker no longer discards the completed batches,
            and batches that failed without crash/timeout history are
            retried serially.
        conformance: check identity (d), op-for-op behavioural
            equivalence across all architectures (on by default).
        fault_conformance: check identity (e), response equivalence on
            a faulty memory (on by default).
        coverage_conformance: check identity (f), coverage-certificate
            vs simulated-sweep agreement (on by default).
        vector_conformance: check identity (g), scalar-vs-vector sweep
            report equality on identity (e)'s sample (on by default;
            no-op without numpy or with ``fault_conformance=False``).
        infield_conformance: check identity (h), the fault-free and
            mid-stream-injection in-field session pair (on by default).
        service_conformance: check identity (i), the interrupted-then-
            resumed sweep vs the uninterrupted serial sweep (on by
            default).
        prt_conformance: check identity (j), pseudo-ring session
            determinism and controller/session agreement (on by
            default).
        shard_timeout: per-batch wall-clock budget (seconds), enforced
            by the engine when ``jobs > 1``.

    Raises:
        SweepInterrupted: SIGINT mid-corpus; carries the partial
            :class:`FuzzReport` (marked ``interrupted``) aggregating
            every completed batch.
    """
    from repro.conformance.faulty.check import SweepInterrupted
    from repro.service.engine import (
        Job,
        JobEngine,
        JobsInterrupted,
        RetryPolicy,
    )

    if samples <= 0:
        raise ValueError(f"need at least one sample, got {samples}")
    if jobs <= 0:
        raise ValueError(f"need at least one job, got {jobs}")
    report = FuzzReport(samples=samples, seed=seed)

    def aggregate(batches: Sequence[List[Dict[str, Any]]]) -> FuzzReport:
        for batch in batches:
            for entry in batch:
                report.checked += 1
                if entry.get("fsm_compiled"):
                    report.fsm_compiled += 1
                if entry.get("fault_detected"):
                    report.fault_detected += 1
                if entry.get("vector_checked"):
                    report.vector_checked += 1
                report.coverage_pairs += entry.get("coverage_pairs", 0)
                if entry.get("infield_checked"):
                    report.infield_checked += 1
                if entry.get("service_checked"):
                    report.service_checked += 1
                if entry.get("prt_checked"):
                    report.prt_checked += 1
                if not entry["ok"]:
                    report.mismatch_count += 1
                    report.mismatches.append(
                        {k: v for k, v in entry.items() if k != "ok"}
                    )
        report.mismatches.sort(key=lambda entry: entry["index"])
        return report

    jobs = min(jobs, samples)
    if jobs == 1:
        try:
            batches = [
                _check_batch((seed, 0, samples, conformance,
                              fault_conformance, coverage_conformance,
                              vector_conformance, infield_conformance,
                              service_conformance, prt_conformance))
            ]
        except KeyboardInterrupt:
            report.interrupted = True
            raise SweepInterrupted(aggregate([])) from None
        return aggregate(batches)

    chunk = (samples + jobs - 1) // jobs
    work = [
        (seed, start, min(chunk, samples - start), conformance,
         fault_conformance, coverage_conformance, vector_conformance,
         infield_conformance, service_conformance, prt_conformance)
        for start in range(0, samples, chunk)
    ]
    submissions = [
        Job(key=f"fuzz:{seed}:{args[1]}:{args[2]}", fn=_check_batch,
            payload=args)
        for args in work
    ]
    engine = JobEngine(
        workers=jobs, policy=RetryPolicy(timeout=shard_timeout)
    )
    try:
        engine_report = engine.run(submissions)
    except JobsInterrupted as interrupt:
        completed = {o.key: o.value for o in interrupt.outcomes if o.ok}
        report.interrupted = True
        raise SweepInterrupted(aggregate(
            [completed[job.key] for job in submissions
             if job.key in completed]
        )) from None
    finally:
        engine.close()

    batches: List[List[Dict[str, Any]]] = []
    serial_retries = 0
    for outcome, args in zip(engine_report.outcomes, work):
        if outcome.ok:
            batches.append(outcome.value)
        elif outcome.safe_inline:
            # The batch only raised — completed batches are safe, so
            # rerun it serially rather than losing its samples.
            try:
                batches.append(_check_batch(args))
                serial_retries += 1
            except Exception as error:
                batches.append([_lost_batch_entry(
                    args[1], args[2],
                    f"{outcome.error}; serial retry: "
                    f"{type(error).__name__}: {error}",
                )])
        else:
            batches.append([_lost_batch_entry(
                args[1], args[2], f"{outcome.status}: {outcome.error}",
            )])
    stats = engine_report.stats()
    stats["serial_retries"] = serial_retries
    report.service_stats = stats
    return aggregate(batches)
