"""Fault support extraction and behavioural strata.

Soundness of the prover's projection rests on knowing every logical
address a fault can possibly touch (its *support*): the words its hooks
filter on, the cells it forces, and — for decoder faults — every address
whose decode mapping the install rewrites.  This module extracts that
support per concrete fault type.  Extraction is deliberately closed over
the exact types of :mod:`repro.faults`: an unknown type (including a
subclass that might override hooks with wider reach) yields ``None`` and
the prover returns a conservative ``unknown`` verdict instead of a
guess.

The same extraction produces a *stratum signature*: the fault's
parameters with word coordinates replaced by their rank within the
support.  Two faults with equal signatures see isomorphic projected
executions — the march visits their support cells in the same relative
order with the same operations — so they provably share a verdict, and
the prover runs one symbolic execution per stratum instead of one per
instance.  Bit positions stay absolute (data backgrounds make behaviour
bit-dependent on word-oriented memories); word *distances* are erased
(no fault mechanism depends on them).
"""

from __future__ import annotations

from typing import Any, Optional, Set, Tuple

from repro.faults.address_decoder import (
    AddressMapsNowhere,
    AddressMapsToMultiple,
    AddressMapsToWrongCell,
    TwoAddressesOneCell,
)
from repro.faults.base import CellFault
from repro.faults.coupling import (
    IdempotentCouplingFault,
    InversionCouplingFault,
    StateCouplingFault,
)
from repro.faults.linked import CompositeFault
from repro.faults.neighborhood import ActiveNpsf, PassiveNpsf
from repro.faults.port import PortRestrictedFault, PortStuckOpenAccess
from repro.faults.read_faults import (
    DeceptiveReadDestructiveFault,
    IncorrectReadFault,
    ReadDestructiveFault,
)
from repro.faults.retention import DataRetentionFault
from repro.faults.stuck_at import StuckAtFault
from repro.faults.stuck_open import StuckOpenFault
from repro.faults.transition import TransitionFault

#: Marker wrapping a word coordinate inside a raw signature; the
#: relativisation pass replaces it by the word's rank in the support.
_W = "w"


def _word(word: int) -> Tuple[str, int]:
    return (_W, word)


def _raw_signature(fault: CellFault) -> Optional[Tuple[Set[int], Tuple]]:
    """(support words, signature with ``(_W, word)`` markers) or None.

    Dispatch is on the *exact* type: subclasses may override hooks with
    semantics the projection cannot see, so they are unknown.
    """
    t = type(fault)
    if t is StuckAtFault:
        return {fault.word}, ("SAF", _word(fault.word), fault.bit, fault.value)
    if t is TransitionFault:
        return {fault.word}, ("TF", _word(fault.word), fault.bit, fault.rising)
    if t is StuckOpenFault:
        return (
            {fault.word},
            ("SOF", _word(fault.word), fault.bit, fault.weak_value,
             fault.disturb_threshold),
        )
    if t is DataRetentionFault:
        return (
            {fault.word},
            ("DRF", _word(fault.word), fault.bit, fault.from_value,
             fault.decay_time),
        )
    if t is IncorrectReadFault:
        return {fault.word}, ("IRF", _word(fault.word), fault.bit, fault.state)
    if t is ReadDestructiveFault:
        return {fault.word}, ("RDF", _word(fault.word), fault.bit, fault.state)
    if t is DeceptiveReadDestructiveFault:
        return {fault.word}, ("DRDF", _word(fault.word), fault.bit, fault.state)
    if t is InversionCouplingFault:
        return (
            {fault.aggressor_word, fault.victim_word},
            ("CFin", _word(fault.aggressor_word), fault.aggressor_bit,
             _word(fault.victim_word), fault.victim_bit, fault.rising),
        )
    if t is IdempotentCouplingFault:
        return (
            {fault.aggressor_word, fault.victim_word},
            ("CFid", _word(fault.aggressor_word), fault.aggressor_bit,
             _word(fault.victim_word), fault.victim_bit, fault.rising,
             fault.forced_value),
        )
    if t is StateCouplingFault:
        return (
            {fault.aggressor_word, fault.victim_word},
            ("CFst", _word(fault.aggressor_word), fault.aggressor_bit,
             _word(fault.victim_word), fault.victim_bit,
             fault.aggressor_state, fault.forced_value),
        )
    if t is AddressMapsNowhere:
        return {fault.address}, ("AF1", _word(fault.address))
    if t is AddressMapsToWrongCell:
        return (
            {fault.address, fault.wrong_word},
            ("AF2", _word(fault.address), _word(fault.wrong_word)),
        )
    if t is TwoAddressesOneCell:
        return (
            {fault.address, fault.other_address},
            ("AF3", _word(fault.address), _word(fault.other_address)),
        )
    if t is AddressMapsToMultiple:
        return (
            {fault.address, fault.extra_word},
            ("AF4", _word(fault.address), _word(fault.extra_word)),
        )
    if t is PassiveNpsf:
        base_word, base_bit = fault.base
        words = {base_word} | {word for word, _ in fault.neighbour_cells}
        return (
            words,
            ("PNPSF", _word(base_word), base_bit,
             tuple((_word(w), b) for w, b in fault.neighbour_cells),
             fault.pattern),
        )
    if t is ActiveNpsf:
        base_word, base_bit = fault.base
        trig_word, trig_bit = fault.trigger
        words = {base_word, trig_word} | {word for word, _ in fault.others}
        return (
            words,
            ("ANPSF", _word(base_word), base_bit, _word(trig_word), trig_bit,
             fault.rising,
             tuple((_word(w), b) for w, b in fault.others),
             fault.pattern),
        )
    if t is PortStuckOpenAccess:
        return (
            {fault.word},
            ("PAF", fault.port, _word(fault.word), fault.bit,
             fault.open_value),
        )
    if t is PortRestrictedFault:
        inner = _raw_signature(fault.fault)
        if inner is None:
            return None
        words, sig = inner
        return words, ("PORT", fault.port, sig)
    if t is CompositeFault:
        words: Set[int] = set()
        sigs = []
        for member in fault.faults:
            inner = _raw_signature(member)
            if inner is None:
                return None
            member_words, sig = inner
            words |= member_words
            sigs.append(sig)
        return words, ("LINKED", fault.kind, tuple(sigs))
    return None


def _relativise(node: Any, rank: dict) -> Any:
    """Replace every ``(_W, word)`` marker by ``(_W, rank[word])``."""
    if isinstance(node, tuple):
        if len(node) == 2 and node[0] is _W:
            return (_W, rank[node[1]])
        return tuple(_relativise(child, rank) for child in node)
    return node


def _label(node: Any) -> str:
    """Compact deterministic string form of a relativised signature."""
    if isinstance(node, tuple):
        if len(node) == 2 and node[0] is _W:
            return f"w{node[1]}"
        return "(" + ",".join(_label(child) for child in node) + ")"
    if isinstance(node, bool):
        return "+" if node else "-"
    return str(node)


class FaultSupport:
    """The prover-facing description of one fault's reach.

    Attributes:
        addresses: sorted logical addresses the projection must visit.
        signature: hashable stratum key — equal signatures guarantee
            isomorphic projected executions (for one test + geometry).
        label: human-readable stratum name for certificates.
    """

    __slots__ = ("addresses", "signature", "label")

    def __init__(self, addresses: Tuple[int, ...], signature: Tuple) -> None:
        self.addresses = addresses
        self.signature = signature
        self.label = _label(signature)


def support_of(fault: CellFault) -> Optional[FaultSupport]:
    """Extract a fault's support and stratum signature.

    Returns None for fault types outside the registry — the prover must
    then report ``unknown`` rather than project unsoundly.
    """
    raw = _raw_signature(fault)
    if raw is None:
        return None
    words, sig = raw
    addresses = tuple(sorted(words))
    rank = {address: index for index, address in enumerate(addresses)}
    return FaultSupport(addresses, _relativise(sig, rank))
