"""The static fault-coverage prover.

:func:`certify` decides, from march notation alone, whether a march test
detects each fault of a universe — without ever simulating the full
``N``-word memory.  The proof strategy is *projected symbolic execution*:

1.  :func:`repro.analysis.coverage.support.support_of` bounds the set of
    logical addresses a fault can influence (its support).  Every fault
    hook filters on its own word(s), decoder rewrites are confined to
    the fault's own addresses, and idle time only advances at explicit
    pauses — so the faulty run restricted to the support is *bit-exact*
    regardless of memory size.
2.  The projected run executes the real fault object against a sparse
    :class:`~repro.analysis.coverage.shadow.ShadowMemory`, visiting only
    support addresses in each element's traversal order.  A failing read
    there is a failing read of the full run; no failing read there (for
    a fault-free-consistent test) proves the full run passes.
3.  Faults sharing a *stratum signature* (parameters relativised to
    support ranks) see isomorphic projected runs, so one symbolic
    execution decides the whole stratum; witnesses are re-instantiated
    per member analytically.

For covered faults the certificate carries a *witness*: the index in the
golden expansion (:func:`repro.march.simulator.expand`) of an operation
whose read must mismatch.  Tests whose fault-free run already fails
reads (possible for fuzz-generated notation, never for the library) are
handled via the fault-free trace: any fault leaving at least one address
untouched is detected at that address, and a fault involving *every*
address makes the projection the full run, which stays exact.

Verdicts are conservative: fault types outside the support registry, or
any projection failure, yield ``unknown`` — never a guessed ``covered``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.coverage.certificate import (
    COVERED,
    NOT_COVERED,
    UNKNOWN,
    CoverageCertificate,
    FaultVerdict,
)
from repro.analysis.coverage.shadow import ShadowMemory
from repro.analysis.coverage.support import support_of
from repro.faults.base import CellFault
from repro.faults.spec import format_fault
from repro.faults.universe import FaultUniverse, standard_universe
from repro.march.backgrounds import apply_polarity, data_backgrounds
from repro.march.element import AddressOrder, MarchElement, Pause
from repro.march.test import MarchTest

#: Symbolic failure location inside one projected run:
#: (port, background index, item index, support slot, op index).
_SymbolicFailure = Tuple[int, int, int, int, int]


def _fault_free_failures(
    test: MarchTest, patterns: Sequence[int], width: int, ports: int
) -> List[Tuple[int, int, int, int]]:
    """(port, bg_idx, item_idx, op_idx) of reads failing without any fault.

    In a fault-free memory every address receives the identical operation
    sequence, so a single symbolic cell (power-on value 0, carried across
    backgrounds and ports exactly like the real array state) traces all
    of them at once.
    """
    failures: List[Tuple[int, int, int, int]] = []
    value = 0
    for port in range(ports):
        for bg_idx, background in enumerate(patterns):
            for item_idx, item in enumerate(test.items):
                if isinstance(item, Pause):
                    continue
                for op_idx, op in enumerate(item.ops):
                    word = apply_polarity(background, op.polarity, width)
                    if op.is_write:
                        value = word
                    elif word != value:
                        failures.append((port, bg_idx, item_idx, op_idx))
    return failures


class _Projection:
    """One test + geometry, prepared for per-stratum symbolic runs."""

    def __init__(
        self, test: MarchTest, n_words: int, width: int, ports: int
    ) -> None:
        self.test = test
        self.n_words = n_words
        self.width = width
        self.ports = ports
        self.patterns = list(data_backgrounds(width))
        # Golden-stream offset of each item within one (port, background)
        # pass; mirrors the expand() loop structure analytically.
        self.item_offsets: List[int] = []
        offset = 0
        for item in test.items:
            self.item_offsets.append(offset)
            offset += 1 if isinstance(item, Pause) else len(item.ops) * n_words
        self.per_pass = offset
        self.free_failures = _fault_free_failures(
            test, self.patterns, width, ports
        )

    def run(self, fault: CellFault, addresses: Sequence[int]):
        """Execute the projected faulty run over the support addresses.

        Returns the first symbolic failure, or None when every projected
        read matches.  The fault object's dynamic state is reset around
        the run so shared universe instances stay reusable.
        """
        shadow = ShadowMemory(self.n_words, width=self.width, ports=self.ports)
        fault.reset()
        shadow.attach(fault)
        try:
            for port in range(self.ports):
                for bg_idx, background in enumerate(self.patterns):
                    for item_idx, item in enumerate(self.test.items):
                        if isinstance(item, Pause):
                            shadow.elapse(item.duration)
                            continue
                        up = item.order.resolve() is AddressOrder.UP
                        sweep = addresses if up else tuple(reversed(addresses))
                        for address in sweep:
                            for op_idx, op in enumerate(item.ops):
                                word = apply_polarity(
                                    background, op.polarity, self.width
                                )
                                if op.is_write:
                                    shadow.write(port, address, word)
                                    continue
                                if shadow.read(port, address) != word:
                                    slot = addresses.index(address)
                                    return (
                                        port, bg_idx, item_idx, slot, op_idx
                                    )
        finally:
            shadow.detach_all()
            fault.reset()
        return None

    def witness_index(
        self, port: int, bg_idx: int, item_idx: int, address: int, op_idx: int
    ) -> int:
        """Golden-expansion index of one (pass, item, address, op) read."""
        item = self.test.items[item_idx]
        assert isinstance(item, MarchElement)
        if item.order.resolve() is AddressOrder.UP:
            position = address
        else:
            position = self.n_words - 1 - address
        return (
            (port * len(self.patterns) + bg_idx) * self.per_pass
            + self.item_offsets[item_idx]
            + position * len(item.ops)
            + op_idx
        )


def certify(
    test: MarchTest,
    n_words: int,
    width: int = 1,
    ports: int = 1,
    universe: Optional[FaultUniverse] = None,
    faults: Optional[Sequence[CellFault]] = None,
    universe_name: str = "faults",
) -> CoverageCertificate:
    """Statically prove per-fault coverage of ``test`` on a geometry.

    Args:
        test: the march algorithm to certify.
        n_words / width / ports: memory geometry (witness indices are
            geometry-specific).
        universe: fault population; defaults to the full
            :func:`repro.faults.universe.standard_universe` of the
            geometry.
        faults: explicit fault list overriding ``universe`` (used by the
            conformance cross-check and fuzz identity (f)).
        universe_name: label when ``faults`` is given.

    Returns:
        A :class:`CoverageCertificate` with one verdict per fault, a
        witness op index for each ``covered`` verdict, and the stratum
        structure of the proof.
    """
    if faults is None:
        if universe is None:
            universe = standard_universe(n_words, width, ports=ports)
        population: Sequence[CellFault] = universe.faults
        universe_name = universe.name
    else:
        population = list(faults)

    projection = _Projection(test, n_words, width, ports)
    inconsistent = bool(projection.free_failures)
    all_addresses = frozenset(range(n_words))

    certificate = CoverageCertificate(
        test_name=test.name,
        universe_name=universe_name,
        n_words=n_words,
        width=width,
        ports=ports,
        fault_free_consistent=not inconsistent,
    )
    # stratum key -> (verdict, symbolic failure or None)
    cache: Dict[tuple, Tuple[str, Optional[_SymbolicFailure]]] = {}

    for index, fault in enumerate(population):
        support = support_of(fault)
        if support is None:
            verdict, witness, label = UNKNOWN, None, "?"
        else:
            visited = tuple(a for a in support.addresses if 0 <= a < n_words)
            covers_all = set(visited) == all_addresses
            label = support.label
            if inconsistent and not covers_all:
                # Some address is untouched by the fault; it behaves
                # fault-free there, and the fault-free run already fails
                # a read — so the faulty run fails at that address too.
                verdict = COVERED
                untouched = min(all_addresses - set(visited))
                port, bg_idx, item_idx, op_idx = projection.free_failures[0]
                witness = projection.witness_index(
                    port, bg_idx, item_idx, untouched, op_idx
                )
            else:
                # In-range membership is part of the key: a stratum-mate
                # whose support is partly out of range sweeps fewer
                # cells and is not isomorphic.
                in_range = tuple(
                    0 <= a < n_words for a in support.addresses
                )
                key = (support.signature, covers_all, in_range)
                if key not in cache:
                    try:
                        failure = projection.run(fault, visited)
                    except Exception:
                        cache[key] = (UNKNOWN, None)
                    else:
                        cache[key] = (
                            (COVERED, failure)
                            if failure is not None
                            else (NOT_COVERED, None)
                        )
                verdict, symbolic = cache[key]
                witness = None
                if verdict == COVERED and symbolic is not None:
                    port, bg_idx, item_idx, slot, op_idx = symbolic
                    witness = projection.witness_index(
                        port, bg_idx, item_idx, visited[slot], op_idx
                    )
        entry = certificate.strata.setdefault(
            label, {"verdict": verdict, "members": 0}
        )
        entry["members"] += 1
        if entry["verdict"] != verdict:
            # Same label, different geometry interaction (e.g. support
            # partly out of range) — don't misreport the stratum.
            entry["verdict"] = "mixed"
        certificate.verdicts.append(
            FaultVerdict(
                index=index,
                kind=fault.kind,
                spec=format_fault(fault),
                description=fault.describe(),
                verdict=verdict,
                witness=witness,
                stratum=label,
            )
        )
    return certificate
