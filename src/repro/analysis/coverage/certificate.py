"""Coverage certificates: per-fault verdicts proved from march notation.

A :class:`CoverageCertificate` is the output of the static prover
(:mod:`repro.analysis.coverage.prover`): for every fault of a universe a
verdict — ``covered`` (the test *must* fail a read), ``not-covered``
(the test provably passes) or ``unknown`` (outside the prover's sound
fragment) — plus, for covered faults, a concrete *witness*: the index of
an operation in the golden expansion (:func:`repro.march.simulator.
expand`) whose read must mismatch when the fault is present.

The contract is one-sided conservatism: a wrong ``covered`` or a wrong
``not-covered`` is a prover bug (the differential cross-check in
:mod:`repro.conformance.faulty.coverage` and fuzz identity (f) exist to
catch it); ``unknown`` is always legal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Verdict values (plain strings so certificates serialise naturally).
COVERED = "covered"
NOT_COVERED = "not-covered"
UNKNOWN = "unknown"

VERDICTS = (COVERED, NOT_COVERED, UNKNOWN)


@dataclass(frozen=True)
class FaultVerdict:
    """The proved verdict for one fault instance.

    Attributes:
        index: the fault's position in the certified population.
        kind: taxonomy tag (``"SAF"``, ``"CFid"``, ...).
        spec: :mod:`repro.faults.spec` string when expressible, else None.
        description: the fault model's ``describe()`` line.
        verdict: ``covered`` / ``not-covered`` / ``unknown``.
        witness: golden-expansion op index whose read must fail
            (covered faults only).
        stratum: label of the behavioural stratum the verdict was proved
            for — faults in one stratum are isomorphic up to cell
            position and share a verdict.
    """

    index: int
    kind: str
    spec: Optional[str]
    description: str
    verdict: str
    witness: Optional[int] = None
    stratum: str = ""

    def to_json(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "spec": self.spec,
            "description": self.description,
            "verdict": self.verdict,
            "witness": self.witness,
            "stratum": self.stratum,
        }


@dataclass
class CoverageCertificate:
    """Static coverage verdicts of one march test over one fault universe.

    Attributes:
        test_name: the certified algorithm.
        universe_name: label of the fault population.
        n_words / width / ports: the memory geometry the certificate is
            proved for (witness indices are geometry-specific).
        verdicts: one :class:`FaultVerdict` per fault, in universe order.
        strata: per-stratum verdict and member count, keyed by stratum
            label — the dedup structure of the proof (one symbolic run
            per stratum, instantiated per member).
        fault_free_consistent: False when the test's fault-free run
            already fails reads — every fault is then trivially
            "covered" (the sweep's detection criterion is any failing
            read), so covered verdicts carry no design information.
    """

    test_name: str
    universe_name: str
    n_words: int
    width: int
    ports: int
    verdicts: List[FaultVerdict] = field(default_factory=list)
    strata: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    fault_free_consistent: bool = True

    # -- aggregation ---------------------------------------------------------

    def count(self, verdict: str) -> int:
        return sum(1 for v in self.verdicts if v.verdict == verdict)

    @property
    def covered_count(self) -> int:
        return self.count(COVERED)

    @property
    def not_covered_count(self) -> int:
        return self.count(NOT_COVERED)

    @property
    def unknown_count(self) -> int:
        return self.count(UNKNOWN)

    @property
    def unknown_rate(self) -> float:
        """Fraction of the population the prover could not decide."""
        if not self.verdicts:
            return 0.0
        return self.unknown_count / len(self.verdicts)

    def by_kind(self) -> Dict[str, Dict[str, int]]:
        """Per-kind verdict counts: ``{kind: {verdict: count}}``."""
        groups: Dict[str, Dict[str, int]] = {}
        for v in self.verdicts:
            counts = groups.setdefault(
                v.kind, {COVERED: 0, NOT_COVERED: 0, UNKNOWN: 0}
            )
            counts[v.verdict] += 1
        return groups

    def kind_fully_covered(self, kind: str) -> Optional[bool]:
        """True when every instance of ``kind`` is proved covered, False
        when at least one is proved not covered, None when the kind is
        absent or only undecided instances remain."""
        counts = self.by_kind().get(kind)
        if counts is None:
            return None
        if counts[NOT_COVERED]:
            return False
        if counts[COVERED] and not counts[UNKNOWN]:
            return True
        return None

    def escapes(self, kind: Optional[str] = None) -> List[FaultVerdict]:
        """Faults proved *not* covered (optionally of one kind)."""
        return [
            v
            for v in self.verdicts
            if v.verdict == NOT_COVERED and (kind is None or v.kind == kind)
        ]

    # -- serialisation -------------------------------------------------------

    @property
    def geometry(self) -> Tuple[int, int, int]:
        return (self.n_words, self.width, self.ports)

    def to_json(self) -> Dict[str, Any]:
        return {
            "test": self.test_name,
            "universe": self.universe_name,
            "geometry": list(self.geometry),
            "covered": self.covered_count,
            "not_covered": self.not_covered_count,
            "unknown": self.unknown_count,
            "unknown_rate": round(self.unknown_rate, 4),
            "fault_free_consistent": self.fault_free_consistent,
            "by_kind": self.by_kind(),
            "strata": self.strata,
            "verdicts": [v.to_json() for v in self.verdicts],
        }

    def format(self) -> str:
        total = len(self.verdicts)
        lines = [
            f"certificate: {self.test_name} over {self.universe_name} "
            f"on {self.n_words}x{self.width}x{self.ports}: "
            f"{self.covered_count}/{total} covered, "
            f"{self.not_covered_count} not covered, "
            f"{self.unknown_count} unknown "
            f"({100.0 * self.unknown_rate:.1f}%)"
        ]
        for kind, counts in sorted(self.by_kind().items()):
            total_kind = sum(counts.values())
            lines.append(
                f"  {kind:12s} {counts[COVERED]:4d}/{total_kind:<4d} covered"
                + (
                    f", {counts[UNKNOWN]} unknown"
                    if counts[UNKNOWN]
                    else ""
                )
            )
        return "\n".join(lines)
