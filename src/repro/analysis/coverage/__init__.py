"""Static fault-coverage prover over march notation.

Public surface:

- :func:`certify` — prove per-fault coverage of a march test over a
  fault universe, returning a :class:`CoverageCertificate` with concrete
  failing-read witnesses.
- :class:`CoverageCertificate` / :class:`FaultVerdict` — the certificate
  datatypes, with ``covered`` / ``not-covered`` / ``unknown`` verdicts.
- :func:`support_of` — per-fault address support and stratum signature.
"""

from repro.analysis.coverage.certificate import (
    COVERED,
    NOT_COVERED,
    UNKNOWN,
    VERDICTS,
    CoverageCertificate,
    FaultVerdict,
)
from repro.analysis.coverage.prover import certify
from repro.analysis.coverage.shadow import ShadowMemory
from repro.analysis.coverage.support import FaultSupport, support_of

__all__ = [
    "COVERED",
    "NOT_COVERED",
    "UNKNOWN",
    "VERDICTS",
    "CoverageCertificate",
    "FaultVerdict",
    "ShadowMemory",
    "FaultSupport",
    "certify",
    "support_of",
]
