"""Sparse shadow memory: the abstract domain of the coverage prover.

The prover never simulates all ``N`` addresses.  Its abstraction is a
*projection*: a march test's behaviour at the handful of cells a single
fault involves is independent of every other address, because each fault
hook of :mod:`repro.faults` filters on its own word(s) and mutates
nothing for foreign accesses, and because idle time (``on_elapse``) only
advances at explicit march pauses — never per access.
:class:`ShadowMemory` therefore models just the involved words (a sparse
dict defaulting to the power-on value 0) while reproducing the *exact*
access semantics of :class:`repro.memory.sram.Sram`: decoder indirection
(wired-AND multi-target reads, lost writes on empty mappings) and the
hook order of the real write/read/elapse paths.  Running the real fault
objects against it yields bit-exact faulty behaviour at the involved
addresses at a cost independent of memory size.
"""

from __future__ import annotations

from typing import Dict, List

from repro.memory.decoder import AddressDecoder
from repro.memory.retention import RetentionClock


class ShadowMemory:
    """Sparse, fault-hook-faithful stand-in for :class:`Sram`.

    Implements the full surface the fault models touch (``peek`` /
    ``poke`` / ``force_bit``, ``decoder``, ``ports`` / ``width`` /
    ``n_words`` / ``open_read_value``) plus the functional port
    interface, with cell storage lazily defaulting to the power-on
    value 0 — exactly the initial state :meth:`Sram.reset_state`
    establishes before a coverage sweep injects a fault.
    """

    def __init__(
        self,
        n_words: int,
        width: int = 1,
        ports: int = 1,
        open_read_value: int = 0,
    ) -> None:
        self.n_words = n_words
        self.width = width
        self.ports = ports
        self.open_read_value = open_read_value & self.word_mask
        self.decoder = AddressDecoder(n_words)
        self.clock = RetentionClock()
        self.faults: List = []
        self._cells: Dict[int, int] = {}

    @property
    def word_mask(self) -> int:
        return (1 << self.width) - 1

    # -- raw cell access (mirrors Sram) --------------------------------------

    def peek(self, word: int) -> int:
        return self._cells.get(word, 0)

    def poke(self, word: int, value: int) -> None:
        self._cells[word] = value & self.word_mask

    def force_bit(self, word: int, bit: int, value: int) -> None:
        current = self.peek(word)
        if value:
            self.poke(word, current | (1 << bit))
        else:
            self.poke(word, current & ~(1 << bit))

    # -- functional port interface (same hook order as Sram) -----------------

    def write(self, port: int, address: int, value: int) -> None:
        value &= self.word_mask
        self.clock.advance(1)
        for word in self.decoder.targets(address):
            old = self.peek(word)
            new = value
            for fault in self.faults:
                new = fault.on_write(self, port, word, old, new) & self.word_mask
            self.poke(word, new)
            for fault in self.faults:
                fault.on_any_write(self, port, word, old, new)

    def read(self, port: int, address: int) -> int:
        self.clock.advance(1)
        targets = self.decoder.targets(address)
        if not targets:
            return self.open_read_value
        observed = self.word_mask
        for word in targets:
            value = self.peek(word)
            for fault in self.faults:
                value = fault.on_read(self, port, word, value) & self.word_mask
            observed &= value
        return observed

    def elapse(self, duration: int) -> None:
        self.clock.advance(duration)
        for fault in self.faults:
            fault.on_elapse(self, duration)

    # -- fault management ----------------------------------------------------

    def attach(self, fault) -> None:
        fault.install(self)
        self.faults.append(fault)

    def detach_all(self) -> None:
        errors: List[BaseException] = []
        try:
            for fault in self.faults:
                try:
                    fault.remove(self)
                except Exception as error:
                    errors.append(error)
        finally:
            self.faults.clear()
            self.decoder.reset()
        if errors:
            raise errors[0]
