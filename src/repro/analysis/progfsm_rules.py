"""Upper-buffer-program lint rules (``PF…``).

These run on compiled :class:`~repro.core.progfsm.compiler.FsmProgram`
rows, mirroring the microcode ``MC…`` catalogue where the architectures
share a failure mode:

* ``PF003`` is the buffer-overflow analogue of ``MC007`` — with the
  difference that the circular buffer never auto-grows, so overflowing
  an explicitly-sized buffer is fatal while overflowing the *default*
  depth is a warning (a deeper buffer could still be built);
* ``PF002``/``PF007`` mirror ``MC010``/``MC011`` (termination verdicts
  from the abstract interpreter);
* ``PF004``/``PF005`` mirror ``MC009``/``MC008`` (capability/loop-row
  agreement) — with progfsm-specific severities, because a stray loop
  row degrades gracefully here instead of needing absent hardware.

``docs/ANALYSIS.md`` documents the catalogue; the test suite seeds one
defect per rule to prove each fires with the right id and location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.interpreter import Interpretation, Verdict
from repro.analysis.progfsm_cfg import FsmControlFlowGraph
from repro.analysis.rules import REGISTRY, rule
from repro.core.controller import ControllerCapabilities
from repro.core.progfsm.compiler import FsmProgram
from repro.core.progfsm.instruction import DataControl
from repro.core.progfsm.upper_buffer import DEFAULT_ROWS


@dataclass
class FsmProgramAnalysis:
    """Everything an upper-buffer-level rule may inspect."""

    program: FsmProgram
    cfg: FsmControlFlowGraph
    interpretation: Optional[Interpretation]
    capabilities: Optional[ControllerCapabilities] = None
    buffer_rows: Optional[int] = None


def run_fsm_rules(analysis: FsmProgramAnalysis) -> List[Diagnostic]:
    """Run every upper-buffer-level rule over one analysed program."""
    diagnostics: List[Diagnostic] = []
    for spec in sorted(REGISTRY.values(), key=lambda s: s.rule_id):
        if spec.scope != "fsm":
            continue
        diagnostics.extend(spec.build(f) for f in spec.check(analysis))
    return diagnostics


@rule("PF001", Severity.WARNING, "unreachable buffer row", scope="fsm")
def _unreachable_row(analysis: FsmProgramAnalysis) -> Iterator[Tuple]:
    """Rows the pointer can never reach — e.g. anything after a
    ``LOOP_PORT`` row, which either wraps to row 0 or ends the test."""
    for index in analysis.cfg.unreachable():
        yield (
            Location(instruction=index),
            f"buffer row {index} "
            f"({analysis.program.instructions[index]}) can never execute",
            "remove the dead row or fix the loop rows before it",
        )


@rule("PF002", Severity.ERROR, "program provably never terminates",
      scope="fsm")
def _nonterminating(analysis: FsmProgramAnalysis) -> Iterator[Tuple]:
    interp = analysis.interpretation
    if interp is not None and interp.verdict is Verdict.DIVERGES:
        yield (
            Location(instruction=interp.location),
            f"abstract interpretation proves divergence: {interp.reason}",
            "keep at most one LOOP_BG row, placed after the element rows",
        )


@rule("PF003", Severity.ERROR, "program exceeds the circular buffer",
      scope="fsm")
def _buffer_overflow(analysis: FsmProgramAnalysis) -> Iterator:
    """The MC007 analogue.  Unlike the microcode storage unit the
    circular buffer never auto-grows — ``CircularBuffer.load`` rejects
    an oversized program outright — so an explicit buffer depth makes
    this fatal, while the default depth only warns (a controller with a
    deeper buffer could still run the program)."""
    rows = len(analysis.program.instructions)
    if analysis.buffer_rows is not None:
        if rows > analysis.buffer_rows:
            yield (
                Location(instruction=analysis.buffer_rows),
                f"program needs {rows} rows but the circular buffer holds "
                f"{analysis.buffer_rows}",
                "enlarge the buffer or shorten the algorithm",
            )
    elif rows > DEFAULT_ROWS:
        yield Diagnostic(
            rule="PF003",
            severity=Severity.WARNING,
            message=(f"program needs {rows} rows, beyond the default "
                     f"{DEFAULT_ROWS}-row buffer — the default controller "
                     "build cannot load it"),
            location=Location(instruction=DEFAULT_ROWS),
            hint=f"construct the controller with buffer_rows >= {rows}",
        )


@rule("PF004", Severity.WARNING, "capability loop row missing from the tail",
      scope="fsm")
def _missing_capability_loop(analysis: FsmProgramAnalysis) -> Iterator[Tuple]:
    caps = analysis.capabilities
    if caps is None:
        return
    ctrls = {instr.data_ctrl for instr in analysis.program.instructions}
    tail = Location(
        instruction=max(0, len(analysis.program.instructions) - 1)
    )
    if caps.word_oriented and DataControl.LOOP_BG not in ctrls:
        yield (
            tail,
            f"width={caps.width} memory but no LOOP_BG row: only the first "
            "data background is ever tested",
            "append a LOOP_BG (path A) row after the element rows",
        )
    if caps.multiport and DataControl.LOOP_PORT not in ctrls:
        yield (
            tail,
            f"ports={caps.ports} memory but no LOOP_PORT row: only port 0 "
            "is ever tested",
            "append a LOOP_PORT (path B) row as the last buffer row",
        )


@rule("PF005", Severity.WARNING, "loop row without matching capability",
      scope="fsm")
def _pointless_loop_row(analysis: FsmProgramAnalysis) -> Iterator:
    """The MC008 analogue, softened: the shared datapath always exists,
    so a mismatched loop row degrades instead of failing.  A ``LOOP_BG``
    on a bit-oriented target never takes path A (one background, *Last
    Data* is always asserted) — a dead loop worth a warning; a
    ``LOOP_PORT`` on a single-port target ends the test at first reach,
    i.e. it acts as a plain terminator — merely advisory."""
    caps = analysis.capabilities
    if caps is None:
        return
    for index, instr in enumerate(analysis.program.instructions):
        if instr.data_ctrl is DataControl.LOOP_BG and not caps.word_oriented:
            yield (
                Location(instruction=index),
                f"LOOP_BG row {index} on a width={caps.width} target: one "
                "data background, path A is never taken",
                "drop the LOOP_BG row or target a word-oriented memory",
            )
        if instr.data_ctrl is DataControl.LOOP_PORT and not caps.multiport:
            yield Diagnostic(
                rule="PF005",
                severity=Severity.INFO,
                message=(f"LOOP_PORT row {index} on a single-port target "
                         "ends the test at first reach (a plain "
                         "terminator)"),
                location=Location(instruction=index),
                hint="drop the LOOP_PORT row or target a multiport memory",
            )


@rule("PF006", Severity.INFO, "hold bit on a loop row is ignored",
      scope="fsm")
def _hold_on_loop_row(analysis: FsmProgramAnalysis) -> Iterator[Tuple]:
    """Loop rows are handled by the upper controller directly; the lower
    FSM — and with it the hold-in-DONE pause — never runs for them."""
    for index, instr in enumerate(analysis.program.instructions):
        if not instr.is_element and instr.hold:
            yield (
                Location(instruction=index),
                f"row {index} ({instr}) sets the hold bit, but loop rows "
                "never enter the lower FSM's Done state — no pause happens",
                "move the hold bit onto the following element row",
            )


@rule("PF007", Severity.WARNING, "control flow defeats static analysis",
      scope="fsm")
def _unanalyzable(analysis: FsmProgramAnalysis) -> Iterator[Tuple]:
    interp = analysis.interpretation
    if interp is not None and interp.verdict is Verdict.UNKNOWN:
        yield (
            Location(instruction=interp.location),
            f"cannot bound the cycle count: {interp.reason}",
            "shorten the program so the row x background x port state "
            "space fits the abstract-step budget",
        )
