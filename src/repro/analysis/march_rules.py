"""March-algorithm-level lint rules (``MA…``).

These run on a :class:`~repro.march.test.MarchTest` before any program
is assembled, so an algorithm author gets feedback without choosing a
target architecture.  Some severities depend on the ``target``:

* ``"microcode"`` — the microcode controller runs any element pattern,
  but its HOLD pause timer is a 2^k counter, so pause durations must be
  powers of two within the timer range;
* ``"progfsm"`` — elements must map onto SM0–SM7 and pauses must be
  expressible through the single hold register; violations are fatal
  (this is what :func:`repro.core.progfsm.compiler.compile_to_sm`
  enforces through the verifier);
* ``None`` — architecture-independent linting only.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.rules import REGISTRY, rule
from repro.core.microcode.isa import PAUSE_TIMER_BITS
from repro.core.progfsm.march_elements import match_element
from repro.march.element import MarchElement, Pause
from repro.march.test import MarchTest
from repro.march.validate import check_consistency


def run_march_rules(
    test: MarchTest, target: Optional[str] = None
) -> List[Diagnostic]:
    """Run every march-level rule over one algorithm."""
    diagnostics: List[Diagnostic] = []
    for spec in sorted(REGISTRY.values(), key=lambda s: s.rule_id):
        if spec.scope != "march":
            continue
        diagnostics.extend(spec.build(f) for f in spec.check(test, target))
    return diagnostics


@rule("MA001", Severity.ERROR, "empty march element", scope="march")
def _empty_element(test: MarchTest, target: Optional[str]) -> Iterator[Tuple]:
    """An element with no operations assembles to nothing — the sweep it
    notates silently disappears from the program."""
    for index, item in enumerate(test.items):
        if isinstance(item, MarchElement) and item.op_count == 0:
            yield (
                Location(item=index),
                f"element {index} applies no operations",
                "delete the element or give it at least one operation",
            )


@rule("MA002", Severity.WARNING, "redundant consecutive write", scope="march")
def _redundant_write(test: MarchTest, target: Optional[str]) -> Iterator[Tuple]:
    """Writing the same polarity twice in a row adds a cycle per cell
    without exciting any additional fault."""
    for index, item in enumerate(test.items):
        if not isinstance(item, MarchElement):
            continue
        for op_index in range(1, item.op_count):
            prev, here = item.ops[op_index - 1], item.ops[op_index]
            if prev.is_write and here.is_write and prev.polarity == here.polarity:
                yield (
                    Location(item=index, op=op_index),
                    f"element {index} writes w{here.polarity} twice in a row "
                    f"(ops {op_index - 1} and {op_index})",
                    "drop the duplicate write",
                )


@rule("MA003", Severity.WARNING, "read expects the wrong value", scope="march")
def _inconsistent_read(test: MarchTest, target: Optional[str]) -> Iterator[Tuple]:
    """A read whose expected polarity disagrees with what the preceding
    operations left in the cells fails on a perfectly good memory."""
    for problem in check_consistency(test):
        yield (
            Location(item=problem.item_index, op=problem.op_index),
            problem.message,
            "align the read's expected polarity with the cell state",
        )


@rule("MA004", Severity.INFO, "element outside the SM0-SM7 library",
      scope="march")
def _not_sm_mappable(test: MarchTest, target: Optional[str]) -> Iterator:
    """The programmable FSM architecture realises only the eight SM
    patterns; other element shapes need the microcode architecture."""
    severity = Severity.ERROR if target == "progfsm" else Severity.INFO
    for index, item in enumerate(test.items):
        if isinstance(item, MarchElement) and match_element(item) is None:
            yield Diagnostic(
                rule="MA004",
                severity=severity,
                message=(f"element {index} '{item}' matches no SM0-SM7 "
                         "pattern (programmable FSM flexibility boundary)"),
                location=Location(item=index),
                hint="target the microcode architecture for this algorithm",
            )


@rule("MA005", Severity.ERROR, "pause duration not a power of two",
      scope="march")
def _pause_power_of_two(test: MarchTest, target: Optional[str]) -> Iterator[Tuple]:
    """The microcode HOLD pause timer is a 2^k counter; other durations
    are not encodable.  (The progfsm hold register takes any duration.)"""
    if target == "progfsm":
        return
    for index, item in enumerate(test.items):
        if isinstance(item, Pause) and item.duration & (item.duration - 1):
            yield (
                Location(item=index),
                f"pause of {item.duration} time units at item {index} is not "
                "a power of two; the HOLD pause timer is a 2^k counter",
                "round the duration to a neighbouring power of two",
            )


@rule("MA006", Severity.ERROR, "pause exceeds the HOLD timer range",
      scope="march")
def _pause_exceeds_timer(test: MarchTest, target: Optional[str]) -> Iterator[Tuple]:
    if target == "progfsm":
        return
    limit = 1 << PAUSE_TIMER_BITS
    for index, item in enumerate(test.items):
        if isinstance(item, Pause) and not item.duration & (item.duration - 1):
            if item.duration > limit:
                yield (
                    Location(item=index),
                    f"pause of {item.duration} time units at item {index} "
                    f"exceeds the {PAUSE_TIMER_BITS}-bit pause timer "
                    f"(max {limit})",
                    f"cap retention pauses at {limit} time units",
                )


@rule("MA007", Severity.ERROR, "pause shape the hold register cannot express",
      scope="march")
def _progfsm_pause_structure(
    test: MarchTest, target: Optional[str]
) -> Iterator[Tuple]:
    """The progfsm architecture encodes a pause as the *hold* bit of the
    following element's instruction, timed by one shared register: no
    consecutive or trailing pauses, and all durations must agree."""
    if target != "progfsm":
        return
    first_duration: Optional[int] = None
    previous_was_pause = False
    for index, item in enumerate(test.items):
        if not isinstance(item, Pause):
            previous_was_pause = False
            continue
        if previous_was_pause:
            yield (
                Location(item=index),
                f"consecutive pauses at items {index - 1} and {index}: each "
                "instruction carries a single hold bit",
                "merge the pauses into one",
            )
        if first_duration is None:
            first_duration = item.duration
        elif item.duration != first_duration:
            yield (
                Location(item=index),
                f"pause of {item.duration} at item {index} disagrees with "
                f"the earlier {first_duration}: the hold timer is a single "
                "register",
                "use one duration for every pause",
            )
        previous_was_pause = True
    if previous_was_pause:
        yield (
            Location(item=len(test.items) - 1),
            "trailing pause has no following element to hold",
            "move the pause before a verifying element",
        )
